package onnx

import (
	"fmt"
	"math"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// ToGraph converts a decoded ONNX model into the compiler's graph IR. Every
// node is mapped onto the ops catalog; initializers become weights (float32
// data-carrying, or shape-only when the tensor ships dims without a
// payload, the in-tree zoo's convention for large parameters); structural
// operands (Reshape shapes, Slice ranges, axes lists) are resolved at
// convert time and never enter the graph. Errors wrap ErrImport, with
// *UnsupportedOpError for operators outside the subset.
func ToGraph(m *Model) (*graph.Graph, error) {
	if m == nil || m.Graph == nil {
		return nil, fmt.Errorf("%w: empty model", ErrImport)
	}
	name := m.Graph.Name
	if name == "" {
		name = "onnx-model"
	}
	c := &converter{
		g:      graph.New(name),
		gp:     m.Graph,
		opset:  m.OpsetVersion,
		values: make(map[string]*graph.Value),
		inits:  make(map[string]*TensorProto, len(m.Graph.Initializers)),
	}
	for _, t := range m.Graph.Initializers {
		if t.Name == "" {
			return nil, fmt.Errorf("%w: initializer with empty name", ErrImport)
		}
		c.inits[t.Name] = t
	}
	for _, vi := range m.Graph.Inputs {
		if _, isInit := c.inits[vi.Name]; isInit {
			continue // initializers redundantly listed as graph inputs (old opsets)
		}
		if vi.ElemType != 0 && vi.ElemType != dtFloat {
			return nil, fmt.Errorf("%w: input %q has element type %d, only float32 is supported", ErrImport, vi.Name, vi.ElemType)
		}
		shape := make(tensor.Shape, len(vi.Dims))
		for i, d := range vi.Dims {
			if d <= 0 {
				return nil, fmt.Errorf("%w: input %q has non-static dimension %d (symbolic/dynamic shapes are unsupported)", ErrImport, vi.Name, d)
			}
			shape[i] = int(d)
		}
		c.values[vi.Name] = c.g.AddInput(vi.Name, shape)
	}
	for i, n := range m.Graph.Nodes {
		if err := c.convertNode(i, n); err != nil {
			return nil, err
		}
	}
	if len(m.Graph.Outputs) == 0 {
		return nil, fmt.Errorf("%w: graph declares no outputs", ErrImport)
	}
	for _, vi := range m.Graph.Outputs {
		v, ok := c.values[vi.Name]
		if !ok {
			return nil, fmt.Errorf("%w: output %q is not produced by any node", ErrImport, vi.Name)
		}
		c.g.MarkOutputAs(vi.Name, v)
	}
	if err := c.g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: converted graph invalid: %v", ErrImport, err)
	}
	return c.g, nil
}

type converter struct {
	g      *graph.Graph
	gp     *GraphProto
	opset  int64
	values map[string]*graph.Value
	inits  map[string]*TensorProto
}

// nodeRef names a node for error messages: its own name or "#i".
func nodeRef(i int, n *NodeProto) string {
	if n.Name != "" {
		return fmt.Sprintf("%q", n.Name)
	}
	return fmt.Sprintf("#%d", i)
}

// errNode wraps a node-level import failure with ErrImport and context.
func errNode(i int, n *NodeProto, format string, args ...any) error {
	return fmt.Errorf("%w: node %s (%s): %s", ErrImport, nodeRef(i, n), n.OpType, fmt.Sprintf(format, args...))
}

// --- attribute access -------------------------------------------------------

func findAttr(n *NodeProto, name string) *Attribute {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func intAttr(n *NodeProto, name string, def int64) int64 {
	if a := findAttr(n, name); a != nil {
		return a.I
	}
	return def
}

func floatAttr(n *NodeProto, name string, def float32) float32 {
	if a := findAttr(n, name); a != nil {
		return a.F
	}
	return def
}

func strAttr(n *NodeProto, name, def string) string {
	if a := findAttr(n, name); a != nil && len(a.S) > 0 {
		return string(a.S)
	}
	return def
}

func intsAttr(n *NodeProto, name string) ([]int, bool) {
	a := findAttr(n, name)
	if a == nil {
		return nil, false
	}
	out := make([]int, len(a.Ints))
	for i, v := range a.Ints {
		out[i] = int(v)
	}
	return out, true
}

func floatsAttr(n *NodeProto, name string) ([]float32, bool) {
	a := findAttr(n, name)
	if a == nil {
		return nil, false
	}
	return append([]float32(nil), a.Floats...), true
}

// --- operand resolution -----------------------------------------------------

// valueOf resolves a node input name to a graph value, materializing
// float32 initializers as weights on first use. Structural (integer)
// operands must be consumed via constInts/constFloats instead.
func (c *converter) valueOf(name string) (*graph.Value, error) {
	if v, ok := c.values[name]; ok {
		return v, nil
	}
	t, ok := c.inits[name]
	if !ok {
		return nil, fmt.Errorf("%w: undefined tensor %q", ErrImport, name)
	}
	v, err := c.weightOf(t, false)
	if err != nil {
		return nil, err
	}
	c.values[name] = v
	return v, nil
}

// weightOf materializes one initializer as a graph weight. asIndices
// permits integer tensors, converting them to the float32 index tensors
// Gather consumes.
func (c *converter) weightOf(t *TensorProto, asIndices bool) (*graph.Value, error) {
	shape := make(tensor.Shape, len(t.Dims))
	for i, d := range t.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("%w: initializer %q has non-positive dim %d", ErrImport, t.Name, d)
		}
		shape[i] = int(d)
	}
	if len(shape) == 0 {
		shape = tensor.Of(1) // ONNX scalar → rank-1 single element
	}
	if asIndices && (t.DataType == dtInt64 || t.DataType == dtInt32) {
		idx, err := t.intData()
		if err != nil {
			return nil, err
		}
		if len(idx) != shape.NumElements() {
			return nil, fmt.Errorf("%w: initializer %q has %d elements for shape %v", ErrImport, t.Name, len(idx), shape)
		}
		data := make([]float32, len(idx))
		for i, v := range idx {
			data[i] = float32(v)
		}
		return c.g.AddWeight(t.Name, tensor.FromSlice(data, shape...)), nil
	}
	data, err := t.float32Data()
	if err != nil {
		return nil, err
	}
	if data == nil {
		// Dims without a payload: the zoo's shape-only parameters.
		return c.g.AddWeightShape(t.Name, shape), nil
	}
	if len(data) != shape.NumElements() {
		return nil, fmt.Errorf("%w: initializer %q has %d elements for shape %v", ErrImport, t.Name, len(data), shape)
	}
	return c.g.AddWeight(t.Name, tensor.FromSlice(data, shape...)), nil
}

// constInts reads an integer constant operand (shape/axes/ranges).
func (c *converter) constInts(name string) ([]int, error) {
	t, ok := c.inits[name]
	if !ok {
		return nil, fmt.Errorf("%w: operand %q must be a constant initializer (data-dependent shapes are unsupported)", ErrImport, name)
	}
	return t.intData()
}

// constFloats reads a float constant operand (Resize scales, Clip bounds).
func (c *converter) constFloats(name string) ([]float32, error) {
	t, ok := c.inits[name]
	if !ok {
		return nil, fmt.Errorf("%w: operand %q must be a constant initializer", ErrImport, name)
	}
	data, err := t.float32Data()
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, fmt.Errorf("%w: operand %q is a shape-only tensor", ErrImport, name)
	}
	return data, nil
}

// scalarFloat reports whether name is a data-carrying single-element
// float32 initializer, and its value — the pattern the const-form
// elementwise operators (AddConst, MulConst, scalar Pow) fold.
func (c *converter) scalarFloat(name string) (float32, bool) {
	t, ok := c.inits[name]
	if !ok || t.DataType != dtFloat || t.NumElements() != 1 {
		return 0, false
	}
	data, err := t.float32Data()
	if err != nil || len(data) != 1 {
		return 0, false
	}
	return data[0], true
}

// --- node conversion --------------------------------------------------------

// unaryCtors maps ONNX op types that convert 1:1 onto unary catalog ops.
var unaryCtors = map[string]func() ops.Operator{
	"Relu":       ops.NewRelu,
	"Sigmoid":    ops.NewSigmoid,
	"Tanh":       ops.NewTanh,
	"Erf":        ops.NewErf,
	"Exp":        ops.NewExp,
	"Log":        ops.NewLog,
	"Sqrt":       ops.NewSqrt,
	"Softplus":   ops.NewSoftplus,
	"Identity":   ops.NewIdentity,
	"Neg":        ops.NewNeg,
	"Abs":        ops.NewAbs,
	"Ceil":       ops.NewCeil,
	"Floor":      ops.NewFloor,
	"Round":      ops.NewRound,
	"Reciprocal": ops.NewReciprocal,
}

// binaryCtors maps ONNX op types that convert 1:1 onto binary catalog ops.
var binaryCtors = map[string]func() ops.Operator{
	"Sub":     ops.NewSub,
	"Div":     ops.NewDiv,
	"Min":     ops.NewMin,
	"Max":     ops.NewMax,
	"PRelu":   ops.NewPRelu,
	"Greater": ops.NewGreater,
	"Equal":   ops.NewEqual,
}

func (c *converter) convertNode(i int, n *NodeProto) error {
	op, inputs, err := c.resolveOp(i, n)
	if err != nil {
		return err
	}
	if op == nil {
		return nil // node fully handled (Constant)
	}
	outs, err := c.g.Apply(op, inputs...)
	if err != nil {
		return errNode(i, n, "%v", err)
	}
	if len(outs) < len(n.Outputs) {
		return errNode(i, n, "%d outputs declared, operator produces %d", len(n.Outputs), len(outs))
	}
	for o, name := range n.Outputs {
		if name == "" {
			continue
		}
		if _, dup := c.values[name]; dup {
			return errNode(i, n, "output %q already defined", name)
		}
		c.values[name] = outs[o]
	}
	return nil
}

// inVals resolves node inputs [from, to) as graph values.
func (c *converter) inVals(i int, n *NodeProto, from, to int) ([]*graph.Value, error) {
	if to > len(n.Inputs) {
		return nil, errNode(i, n, "needs %d inputs, has %d", to, len(n.Inputs))
	}
	vals := make([]*graph.Value, 0, to-from)
	for _, name := range n.Inputs[from:to] {
		v, err := c.valueOf(name)
		if err != nil {
			return nil, errNode(i, n, "%v", err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// resolveOp maps one ONNX node onto a catalog operator and its graph
// inputs. A nil operator with nil error means the node required no graph
// node (Constant).
func (c *converter) resolveOp(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	if ctor, ok := unaryCtors[n.OpType]; ok {
		ins, err := c.inVals(i, n, 0, 1)
		return ctor(), ins, err
	}
	if ctor, ok := binaryCtors[n.OpType]; ok {
		ins, err := c.inVals(i, n, 0, 2)
		return ctor(), ins, err
	}

	switch n.OpType {
	case "Constant":
		a := findAttr(n, "value")
		if a == nil || a.T == nil {
			return nil, nil, errNode(i, n, "only the tensor-valued form is supported")
		}
		if len(n.Outputs) != 1 || n.Outputs[0] == "" {
			return nil, nil, errNode(i, n, "needs one named output")
		}
		t := a.T
		t.Name = n.Outputs[0]
		c.inits[n.Outputs[0]] = t // consumed like an initializer
		return nil, nil, nil

	case "Add", "Mul", "Pow":
		if len(n.Inputs) == 2 {
			if v, isScalar := c.scalarFloat(n.Inputs[1]); isScalar {
				var op ops.Operator
				switch n.OpType {
				case "Add":
					op = ops.NewAddConst(v)
				case "Mul":
					op = ops.NewMulConst(v)
				case "Pow":
					op = ops.NewPowConst(v)
				}
				ins, err := c.inVals(i, n, 0, 1)
				return op, ins, err
			}
		}
		var op ops.Operator
		switch n.OpType {
		case "Add":
			op = ops.NewAdd()
		case "Mul":
			op = ops.NewMul()
		case "Pow":
			op = ops.NewPow()
		}
		ins, err := c.inVals(i, n, 0, 2)
		return op, ins, err

	case "Where":
		ins, err := c.inVals(i, n, 0, 3)
		return ops.NewWhere(), ins, err

	case "Cast":
		if to := intAttr(n, "to", 0); to != dtFloat {
			return nil, nil, errNode(i, n, "cast to dtype %d unsupported (only float32)", to)
		}
		ins, err := c.inVals(i, n, 0, 1)
		return ops.NewCast(), ins, err

	case "Clip":
		min, max := float32(-math.MaxFloat32), float32(math.MaxFloat32)
		if a := findAttr(n, "min"); a != nil {
			min = a.F
		} else if len(n.Inputs) >= 2 && n.Inputs[1] != "" {
			v, err := c.constFloats(n.Inputs[1])
			if err != nil || len(v) != 1 {
				return nil, nil, errNode(i, n, "min must be a scalar constant")
			}
			min = v[0]
		}
		if a := findAttr(n, "max"); a != nil {
			max = a.F
		} else if len(n.Inputs) >= 3 && n.Inputs[2] != "" {
			v, err := c.constFloats(n.Inputs[2])
			if err != nil || len(v) != 1 {
				return nil, nil, errNode(i, n, "max must be a scalar constant")
			}
			max = v[0]
		}
		ins, err := c.inVals(i, n, 0, 1)
		return ops.NewClip(min, max), ins, err

	case "LeakyRelu":
		ins, err := c.inVals(i, n, 0, 1)
		return ops.NewLeakyRelu(floatAttr(n, "alpha", 0.01)), ins, err

	case "MatMul":
		ins, err := c.inVals(i, n, 0, 2)
		return ops.NewMatMul(), ins, err

	case "Gemm":
		op := ops.NewGemm(
			floatAttr(n, "alpha", 1), floatAttr(n, "beta", 1),
			intAttr(n, "transA", 0) != 0, intAttr(n, "transB", 0) != 0)
		ins, err := c.inVals(i, n, 0, len(n.Inputs)) // 2 or 3 (optional C)
		return op, ins, err

	case "Conv", "ConvTranspose":
		return c.resolveConv(i, n)

	case "MaxPool", "AveragePool":
		return c.resolvePool(i, n)

	case "GlobalAveragePool":
		ins, err := c.inVals(i, n, 0, 1)
		return ops.NewGlobalAveragePool(), ins, err

	case "BatchNormalization":
		return c.resolveBatchNorm(i, n)

	case "InstanceNormalization":
		ins, err := c.inVals(i, n, 0, 3)
		return ops.NewInstanceNormalization(floatAttr(n, "epsilon", 1e-5)), ins, err

	case "Softmax", "LogSoftmax":
		def := int64(-1)
		if c.opset != 0 && c.opset < 13 {
			def = 1
		}
		axis := int(intAttr(n, "axis", def))
		ins, err := c.inVals(i, n, 0, 1)
		if n.OpType == "LogSoftmax" {
			return ops.NewLogSoftmax(axis), ins, err
		}
		return ops.NewSoftmax(axis), ins, err

	case "Reshape":
		return c.resolveReshape(i, n)

	case "Flatten":
		ins, err := c.inVals(i, n, 0, 1)
		return ops.NewFlatten(int(intAttr(n, "axis", 1))), ins, err

	case "Transpose":
		ins, err := c.inVals(i, n, 0, 1)
		if err != nil {
			return nil, nil, err
		}
		perm, ok := intsAttr(n, "perm")
		if !ok { // default: reverse dimensions
			rank := ins[0].Shape.Rank()
			perm = make([]int, rank)
			for j := range perm {
				perm[j] = rank - 1 - j
			}
		}
		return ops.NewTranspose(perm...), ins, nil

	case "Squeeze", "Unsqueeze":
		axes, haveAxes := intsAttr(n, "axes")
		if !haveAxes && len(n.Inputs) >= 2 {
			var err error
			if axes, err = c.constInts(n.Inputs[1]); err != nil {
				return nil, nil, errNode(i, n, "%v", err)
			}
			haveAxes = true
		}
		ins, err := c.inVals(i, n, 0, 1)
		if n.OpType == "Unsqueeze" {
			if !haveAxes {
				return nil, nil, errNode(i, n, "axes required")
			}
			return ops.NewUnsqueeze(axes...), ins, err
		}
		return ops.NewSqueeze(axes...), ins, err

	case "Slice":
		return c.resolveSlice(i, n)

	case "Concat":
		a := findAttr(n, "axis")
		if a == nil {
			return nil, nil, errNode(i, n, "axis required")
		}
		ins, err := c.inVals(i, n, 0, len(n.Inputs))
		return ops.NewConcat(int(a.I)), ins, err

	case "Split":
		return c.resolveSplit(i, n)

	case "ReduceSum", "ReduceMean", "ReduceMax", "ReduceMin", "ReduceProd":
		return c.resolveReduce(i, n)

	case "Gather":
		return c.resolveGather(i, n)

	case "Expand":
		target, err := c.constInts(n.Inputs[len(n.Inputs)-1])
		if err != nil {
			return nil, nil, errNode(i, n, "%v", err)
		}
		ins, err := c.inVals(i, n, 0, 1)
		return ops.NewExpand(target...), ins, err

	case "Upsample", "Resize":
		return c.resolveResize(i, n)

	case "DepthToSpace", "SpaceToDepth":
		if n.OpType == "DepthToSpace" {
			if mode := strAttr(n, "mode", "DCR"); mode != "DCR" {
				return nil, nil, errNode(i, n, "mode %q unsupported (only DCR)", mode)
			}
		}
		a := findAttr(n, "blocksize")
		if a == nil {
			return nil, nil, errNode(i, n, "blocksize required")
		}
		ins, err := c.inVals(i, n, 0, 1)
		if n.OpType == "DepthToSpace" {
			return ops.NewDepthToSpace(int(a.I)), ins, err
		}
		return ops.NewSpaceToDepth(int(a.I)), ins, err
	}

	return nil, nil, &UnsupportedOpError{Op: n.OpType, Node: nodeRef(i, n)}
}

// symmetricPads halves an ONNX pads list [b1..bk, e1..ek], requiring
// begin == end per spatial dimension (the catalog's Conv/Pool contract).
func symmetricPads(pads []int) ([]int, error) {
	if len(pads)%2 != 0 {
		return nil, fmt.Errorf("pads %v has odd length", pads)
	}
	k := len(pads) / 2
	out := make([]int, k)
	for i := 0; i < k; i++ {
		if pads[i] != pads[i+k] {
			return nil, fmt.Errorf("asymmetric pads %v unsupported (begin and end must match per dimension)", pads)
		}
		out[i] = pads[i]
	}
	return out, nil
}

func (c *converter) resolveConv(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	if ap := strAttr(n, "auto_pad", "NOTSET"); ap != "NOTSET" {
		return nil, nil, errNode(i, n, "auto_pad %q unsupported (explicit pads only)", ap)
	}
	attrs := ops.ConvAttrs{Groups: int(intAttr(n, "group", 1))}
	attrs.Strides, _ = intsAttr(n, "strides")
	attrs.Dilations, _ = intsAttr(n, "dilations")
	if pads, ok := intsAttr(n, "pads"); ok {
		sym, err := symmetricPads(pads)
		if err != nil {
			return nil, nil, errNode(i, n, "%v", err)
		}
		attrs.Pads = sym
	}
	if n.OpType == "ConvTranspose" {
		if op, ok := intsAttr(n, "output_padding"); ok {
			for _, p := range op {
				if p != 0 {
					return nil, nil, errNode(i, n, "output_padding %v unsupported", op)
				}
			}
		}
		if _, ok := intsAttr(n, "output_shape"); ok {
			return nil, nil, errNode(i, n, "output_shape unsupported")
		}
	}
	ins, err := c.inVals(i, n, 0, len(n.Inputs)) // x, w[, bias]
	if err != nil {
		return nil, nil, err
	}
	if n.OpType == "ConvTranspose" {
		return ops.NewConvTranspose(attrs), ins, nil
	}
	return ops.NewConv(attrs), ins, nil
}

func (c *converter) resolvePool(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	if ap := strAttr(n, "auto_pad", "NOTSET"); ap != "NOTSET" {
		return nil, nil, errNode(i, n, "auto_pad %q unsupported (explicit pads only)", ap)
	}
	if intAttr(n, "ceil_mode", 0) != 0 {
		return nil, nil, errNode(i, n, "ceil_mode unsupported")
	}
	if len(n.Outputs) > 1 {
		return nil, nil, errNode(i, n, "indices output unsupported")
	}
	attrs := ops.PoolAttrs{}
	var ok bool
	if attrs.Kernel, ok = intsAttr(n, "kernel_shape"); !ok {
		return nil, nil, errNode(i, n, "kernel_shape required")
	}
	attrs.Strides, _ = intsAttr(n, "strides")
	if pads, havePads := intsAttr(n, "pads"); havePads {
		sym, err := symmetricPads(pads)
		if err != nil {
			return nil, nil, errNode(i, n, "%v", err)
		}
		attrs.Pads = sym
	}
	ins, err := c.inVals(i, n, 0, 1)
	if n.OpType == "AveragePool" {
		if intAttr(n, "count_include_pad", 0) != 0 {
			return nil, nil, errNode(i, n, "count_include_pad unsupported")
		}
		return ops.NewAveragePool(attrs), ins, err
	}
	if dil, haveDil := intsAttr(n, "dilations"); haveDil {
		for _, d := range dil {
			if d != 1 {
				return nil, nil, errNode(i, n, "pooling dilations %v unsupported", dil)
			}
		}
	}
	return ops.NewMaxPool(attrs), ins, err
}

// resolveBatchNorm maps BatchNormalization. When all four parameters are
// data-carrying constants the node folds into per-channel scale+shift
// (Mul + Add) at import time — the inference-mode normalization
// a·x + b with a = scale/√(var+ε), b = bias − mean·a — which the fusion
// pass then merges with neighbors. Shape-only parameters (the zoo's
// convention) keep the 5-input BatchNormalization operator so structural
// round-trips are exact.
func (c *converter) resolveBatchNorm(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	if len(n.Outputs) > 1 {
		return nil, nil, errNode(i, n, "training outputs unsupported")
	}
	if len(n.Inputs) != 5 {
		return nil, nil, errNode(i, n, "needs 5 inputs, has %d", len(n.Inputs))
	}
	eps := floatAttr(n, "epsilon", 1e-5)
	params := make([][]float32, 4)
	foldable := true
	for j, name := range n.Inputs[1:] {
		t, isInit := c.inits[name]
		if !isInit {
			foldable = false
			break
		}
		data, err := t.float32Data()
		if err != nil || data == nil {
			foldable = false
			break
		}
		params[j] = data
	}
	if !foldable {
		ins, err := c.inVals(i, n, 0, 5)
		return ops.NewBatchNormalization(eps), ins, err
	}

	xv, err := c.valueOf(n.Inputs[0])
	if err != nil {
		return nil, nil, errNode(i, n, "%v", err)
	}
	scale, bias, mean, variance := params[0], params[1], params[2], params[3]
	ch := len(scale)
	if len(bias) != ch || len(mean) != ch || len(variance) != ch {
		return nil, nil, errNode(i, n, "parameter lengths differ: %d/%d/%d/%d", len(scale), len(bias), len(mean), len(variance))
	}
	if xv.Shape.Rank() < 2 || xv.Shape[1] != ch {
		return nil, nil, errNode(i, n, "input %v does not have %d channels", xv.Shape, ch)
	}
	a := make([]float32, ch)
	b := make([]float32, ch)
	for j := 0; j < ch; j++ {
		aj := float64(scale[j]) / math.Sqrt(float64(variance[j])+float64(eps))
		a[j] = float32(aj)
		b[j] = float32(float64(bias[j]) - float64(mean[j])*aj)
	}
	// [C] followed by one 1 per spatial dim: trailing-aligned broadcasting
	// lands on the channel axis of [N, C, S...].
	pshape := tensor.Shape{ch}
	for r := 2; r < xv.Shape.Rank(); r++ {
		pshape = append(pshape, 1)
	}
	base := n.Name
	if base == "" {
		base = fmt.Sprintf("bn%d", i)
	}
	av := c.g.AddWeight(base+"_scale", tensor.FromSlice(a, pshape...))
	bv := c.g.AddWeight(base+"_shift", tensor.FromSlice(b, pshape...))
	scaled, err := c.g.Apply(ops.NewMul(), xv, av)
	if err != nil {
		return nil, nil, errNode(i, n, "%v", err)
	}
	return ops.NewAdd(), []*graph.Value{scaled[0], bv}, nil
}

func (c *converter) resolveReshape(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	if intAttr(n, "allowzero", 0) != 0 {
		return nil, nil, errNode(i, n, "allowzero unsupported")
	}
	var target []int
	if shape, ok := intsAttr(n, "shape"); ok { // opset < 5
		target = shape
	} else {
		if len(n.Inputs) < 2 {
			return nil, nil, errNode(i, n, "shape operand required")
		}
		var err error
		if target, err = c.constInts(n.Inputs[1]); err != nil {
			return nil, nil, errNode(i, n, "%v", err)
		}
	}
	ins, err := c.inVals(i, n, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	// ONNX dim 0 copies the corresponding input dim; the input shape is
	// static here, so resolve it now.
	in := ins[0].Shape
	for j, d := range target {
		if d == 0 {
			if j >= in.Rank() {
				return nil, nil, errNode(i, n, "dim 0 at position %d exceeds input rank %d", j, in.Rank())
			}
			target[j] = in[j]
		}
	}
	return ops.NewReshape(target...), ins, nil
}

func (c *converter) resolveSlice(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	var axes, starts, ends []int
	var haveAxes bool
	if len(n.Inputs) >= 3 { // opset >= 10: operands
		var err error
		if starts, err = c.constInts(n.Inputs[1]); err != nil {
			return nil, nil, errNode(i, n, "starts: %v", err)
		}
		if ends, err = c.constInts(n.Inputs[2]); err != nil {
			return nil, nil, errNode(i, n, "ends: %v", err)
		}
		if len(n.Inputs) >= 4 && n.Inputs[3] != "" {
			if axes, err = c.constInts(n.Inputs[3]); err != nil {
				return nil, nil, errNode(i, n, "axes: %v", err)
			}
			haveAxes = true
		}
		if len(n.Inputs) >= 5 && n.Inputs[4] != "" {
			steps, err := c.constInts(n.Inputs[4])
			if err != nil {
				return nil, nil, errNode(i, n, "steps: %v", err)
			}
			for _, s := range steps {
				if s != 1 {
					return nil, nil, errNode(i, n, "steps %v unsupported (unit step only)", steps)
				}
			}
		}
	} else { // opset 1: attributes
		var ok bool
		if starts, ok = intsAttr(n, "starts"); !ok {
			return nil, nil, errNode(i, n, "starts required")
		}
		if ends, ok = intsAttr(n, "ends"); !ok {
			return nil, nil, errNode(i, n, "ends required")
		}
		axes, haveAxes = intsAttr(n, "axes")
	}
	if !haveAxes {
		axes = make([]int, len(starts))
		for j := range axes {
			axes[j] = j
		}
	}
	if len(starts) != len(axes) || len(ends) != len(axes) {
		return nil, nil, errNode(i, n, "axes/starts/ends lengths differ: %d/%d/%d", len(axes), len(starts), len(ends))
	}
	ins, err := c.inVals(i, n, 0, 1)
	return ops.NewSlice(axes, starts, ends), ins, err
}

func (c *converter) resolveSplit(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	axis := int(intAttr(n, "axis", 0))
	sizes, haveSizes := intsAttr(n, "split")
	if !haveSizes && len(n.Inputs) >= 2 && n.Inputs[1] != "" {
		var err error
		if sizes, err = c.constInts(n.Inputs[1]); err != nil {
			return nil, nil, errNode(i, n, "split sizes: %v", err)
		}
		haveSizes = true
	}
	ins, err := c.inVals(i, n, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	if !haveSizes { // equal split across the declared outputs
		parts := len(n.Outputs)
		na, ok := normAxis(axis, ins[0].Shape.Rank())
		if !ok || parts == 0 || ins[0].Shape[na]%parts != 0 {
			return nil, nil, errNode(i, n, "cannot split axis %d of %v into %d equal parts", axis, ins[0].Shape, parts)
		}
		sizes = make([]int, parts)
		for j := range sizes {
			sizes[j] = ins[0].Shape[na] / parts
		}
	}
	return ops.NewSplit(axis, sizes...), ins, nil
}

func normAxis(a, rank int) (int, bool) {
	if a < 0 {
		a += rank
	}
	if a < 0 || a >= rank {
		return 0, false
	}
	return a, true
}

func (c *converter) resolveReduce(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	kinds := map[string]ops.ReduceKind{
		"ReduceSum": ops.ReduceSum, "ReduceMean": ops.ReduceMean,
		"ReduceMax": ops.ReduceMax, "ReduceMin": ops.ReduceMin, "ReduceProd": ops.ReduceProd,
	}
	keep := intAttr(n, "keepdims", 1) != 0
	axes, haveAxes := intsAttr(n, "axes")
	if !haveAxes && len(n.Inputs) >= 2 && n.Inputs[1] != "" { // opset >= 18
		var err error
		if axes, err = c.constInts(n.Inputs[1]); err != nil {
			return nil, nil, errNode(i, n, "axes: %v", err)
		}
		haveAxes = true
	}
	ins, err := c.inVals(i, n, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	if !haveAxes && intAttr(n, "noop_with_empty_axes", 0) != 0 {
		return ops.NewIdentity(), ins, nil
	}
	return ops.NewReduce(kinds[n.OpType], keep, axes...), ins, nil
}

func (c *converter) resolveGather(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	if len(n.Inputs) != 2 {
		return nil, nil, errNode(i, n, "needs 2 inputs, has %d", len(n.Inputs))
	}
	data, err := c.valueOf(n.Inputs[0])
	if err != nil {
		return nil, nil, errNode(i, n, "%v", err)
	}
	// Indices: integer initializers convert to the float32 index tensors
	// the catalog's Gather consumes; anything already in the graph (or a
	// float initializer) resolves normally.
	var idx *graph.Value
	if t, isInit := c.inits[n.Inputs[1]]; isInit && c.values[n.Inputs[1]] == nil && (t.DataType == dtInt64 || t.DataType == dtInt32) {
		if idx, err = c.weightOf(t, true); err != nil {
			return nil, nil, errNode(i, n, "%v", err)
		}
		c.values[n.Inputs[1]] = idx
	} else if idx, err = c.valueOf(n.Inputs[1]); err != nil {
		return nil, nil, errNode(i, n, "%v", err)
	}
	return ops.NewGather(int(intAttr(n, "axis", 0))), []*graph.Value{data, idx}, nil
}

// resolveResize maps Upsample (scales attr or operand) and the restricted
// Resize form (nearest mode, constant integral scales). NCHW [1,1,f,f]
// becomes the catalog's Upsample; any other integral scale vector becomes
// Resize.
func (c *converter) resolveResize(i int, n *NodeProto) (ops.Operator, []*graph.Value, error) {
	if mode := strAttr(n, "mode", "nearest"); mode != "nearest" {
		return nil, nil, errNode(i, n, "mode %q unsupported (only nearest)", mode)
	}
	scales, haveScales := floatsAttr(n, "scales")
	if !haveScales {
		// Upsample opset 9: input 1; Resize opset >= 10: roi at 1, scales at 2.
		for _, cand := range n.Inputs[1:] {
			if cand == "" {
				continue
			}
			t, isInit := c.inits[cand]
			if !isInit || t.DataType != dtFloat {
				continue
			}
			v, err := c.constFloats(cand)
			if err != nil {
				return nil, nil, errNode(i, n, "scales: %v", err)
			}
			if len(v) > 0 {
				scales, haveScales = v, true
				break
			}
		}
	}
	if !haveScales {
		return nil, nil, errNode(i, n, "constant scales required (sizes operand unsupported)")
	}
	ints := make([]int, len(scales))
	for j, s := range scales {
		f := int(s)
		if float32(f) != s || f < 1 {
			return nil, nil, errNode(i, n, "non-integral scale %v unsupported", s)
		}
		ints[j] = f
	}
	ins, err := c.inVals(i, n, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	if len(ints) == 4 && ints[0] == 1 && ints[1] == 1 && ints[2] == ints[3] {
		return ops.NewUpsample(ints[2]), ins, nil
	}
	return ops.NewResize(ints...), ins, nil
}
