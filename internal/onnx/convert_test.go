package onnx

import (
	"errors"
	"testing"
)

// minimalModel wraps one node over a single float input into a Model.
func minimalModel(node *NodeProto, extra ...*TensorProto) *Model {
	return &Model{
		IRVersion:    exportIRVersion,
		OpsetVersion: exportOpset,
		Graph: &GraphProto{
			Name:         "t",
			Inputs:       []*ValueInfo{{Name: "x", ElemType: dtFloat, Dims: []int64{1, 4}}},
			Outputs:      []*ValueInfo{{Name: "y", ElemType: dtFloat, Dims: []int64{1, 4}}},
			Nodes:        []*NodeProto{node},
			Initializers: extra,
		},
	}
}

func TestConvertUnsupportedOp(t *testing.T) {
	m := minimalModel(&NodeProto{
		Name: "rnn0", OpType: "LSTM", Inputs: []string{"x"}, Outputs: []string{"y"},
	})
	_, err := ToGraph(m)
	if err == nil {
		t.Fatal("want error for LSTM, got nil")
	}
	if !errors.Is(err, ErrUnsupportedOp) {
		t.Errorf("error %v does not match ErrUnsupportedOp", err)
	}
	if !errors.Is(err, ErrImport) {
		t.Errorf("error %v does not match ErrImport", err)
	}
	var ue *UnsupportedOpError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v is not an *UnsupportedOpError", err)
	}
	if ue.Op != "LSTM" || ue.Node != `"rnn0"` {
		t.Errorf("unexpected context: op=%q node=%q", ue.Op, ue.Node)
	}
}

func TestConvertSymbolicDim(t *testing.T) {
	m := minimalModel(&NodeProto{OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"y"}})
	m.Graph.Inputs[0].Dims = []int64{-1, 4} // dim_param placeholder
	if _, err := ToGraph(m); err == nil || !errors.Is(err, ErrImport) {
		t.Fatalf("symbolic dim: want ErrImport, got %v", err)
	}
}

func TestConvertNonFloatInput(t *testing.T) {
	m := minimalModel(&NodeProto{OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"y"}})
	m.Graph.Inputs[0].ElemType = dtInt64
	if _, err := ToGraph(m); err == nil || !errors.Is(err, ErrImport) {
		t.Fatalf("int64 input: want ErrImport, got %v", err)
	}
}

func TestConvertDanglingInput(t *testing.T) {
	m := minimalModel(&NodeProto{OpType: "Relu", Inputs: []string{"ghost"}, Outputs: []string{"y"}})
	if _, err := ToGraph(m); err == nil || !errors.Is(err, ErrImport) {
		t.Fatalf("dangling input: want ErrImport, got %v", err)
	}
}

func TestConvertBadAttrCombos(t *testing.T) {
	cases := map[string]*NodeProto{
		"conv-auto-pad": {OpType: "Conv", Inputs: []string{"x", "w"}, Outputs: []string{"y"},
			Attrs: []*Attribute{{Name: "auto_pad", Type: attrString, S: []byte("SAME_UPPER")}}},
		"asymmetric-pads": {OpType: "Conv", Inputs: []string{"x", "w"}, Outputs: []string{"y"},
			Attrs: []*Attribute{{Name: "pads", Type: attrInts, Ints: []int64{1, 0, 1, 1}}}},
		"cast-to-int": {OpType: "Cast", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: []*Attribute{{Name: "to", Type: attrInt, I: dtInt64}}},
		"concat-no-axis": {OpType: "Concat", Inputs: []string{"x", "x"}, Outputs: []string{"y"}},
	}
	w := &TensorProto{Name: "w", DataType: dtFloat, Dims: []int64{4, 4, 1, 1}}
	for name, node := range cases {
		if _, err := ToGraph(minimalModel(node, w)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		} else if !errors.Is(err, ErrImport) {
			t.Errorf("%s: error %v does not match ErrImport", name, err)
		}
	}
}

func TestConvertImportEntryPoint(t *testing.T) {
	// Import = Unmarshal + ToGraph: corrupt bytes surface the same sentinel.
	if _, err := Import([]byte{0xff, 0xff, 0xff}); err == nil || !errors.Is(err, ErrImport) {
		t.Fatalf("corrupt bytes: want ErrImport, got %v", err)
	}

	// A well-formed minimal model imports end to end.
	m := minimalModel(&NodeProto{OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"y"}})
	g, err := Import(m.Marshal())
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if len(g.Nodes) != 1 || g.Nodes[0].Op.Type() != "Relu" {
		t.Fatalf("unexpected graph: %v", g.Nodes)
	}
	if len(g.Outputs) != 1 || g.Outputs[0].Name != "y" {
		t.Fatalf("unexpected outputs: %v", g.Outputs)
	}
}
