package ecg

import (
	"testing"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

func buildSmallCNN(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("smallcnn")
	x := g.AddInput("x", tensor.Of(1, 3, 8, 8))
	w := g.AddWeight("w", tensor.New(4, 3, 3, 3).Rand(1))
	b := g.AddWeight("b", tensor.New(4).Rand(2))
	c := g.Apply1(ops.NewConv(ops.ConvAttrs{Pads: []int{1}}), x, w, b)
	r := g.Apply1(ops.NewRelu(), c)
	fl := g.Apply1(ops.NewFlatten(1), r)
	w2 := g.AddWeight("w2", tensor.New(4*8*8, 10).Rand(3))
	mm := g.Apply1(ops.NewMatMul(), fl, w2)
	sm := g.Apply1(ops.NewSoftmax(-1), mm)
	g.MarkOutput(sm)
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return g
}

func TestBuildAnnotations(t *testing.T) {
	g := buildSmallCNN(t)
	e := Build(g)
	wantMappings := map[string]ops.MappingType{
		"Conv":    ops.ManyToMany,
		"Relu":    ops.OneToOne,
		"Flatten": ops.Reorganize,
		"MatMul":  ops.ManyToMany,
		"Softmax": ops.ManyToMany,
	}
	for _, n := range g.Nodes {
		want, ok := wantMappings[n.Op.Type()]
		if !ok {
			t.Fatalf("unexpected node %v", n)
		}
		if got := e.Mapping(n); got != want {
			t.Errorf("%s mapping = %v, want %v", n.Op.Type(), got, want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := buildSmallCNN(t)
	e := Build(g)
	s := e.ComputeStats()
	if s.Total != 5 {
		t.Errorf("Total = %d, want 5", s.Total)
	}
	if s.CIL != 2 { // Conv + MatMul
		t.Errorf("CIL = %d, want 2", s.CIL)
	}
	if s.MIL != 3 {
		t.Errorf("MIL = %d, want 3", s.MIL)
	}
	if s.IRSBytes != g.IntermediateBytes() {
		t.Errorf("IRSBytes = %d, want %d", s.IRSBytes, g.IntermediateBytes())
	}
	if s.FLOPs != g.FLOPs() {
		t.Errorf("FLOPs = %d, want %d", s.FLOPs, g.FLOPs())
	}
}

func TestBroadcastElementwiseIsOneToMany(t *testing.T) {
	g := graph.New("bcast")
	x := g.AddInput("x", tensor.Of(2, 3))
	bias := g.AddWeight("b", tensor.New(3).Rand(1))
	out := g.Apply1(ops.NewAdd(), x, bias)
	g.MarkOutput(out)
	e := Build(g)
	if got := e.Mapping(g.Nodes[0]); got != ops.OneToMany {
		t.Errorf("broadcast Add mapping = %v, want One-to-Many", got)
	}
}

func TestRefreshAfterSurgery(t *testing.T) {
	g := buildSmallCNN(t)
	e := Build(g)
	before := len(e.Node)
	// Remove the Softmax by redirecting the output to MatMul.
	smNode := g.Nodes[len(g.Nodes)-1]
	mmOut := smNode.Inputs[0]
	if err := g.ReplaceAllUses(smNode.Outputs[0], mmOut); err != nil {
		t.Fatalf("replace: %v", err)
	}
	g.EliminateDeadNodes()
	e.Refresh()
	if len(e.Node) != before-1 {
		t.Errorf("Refresh kept %d annotations, want %d", len(e.Node), before-1)
	}
	for n := range e.Node {
		found := false
		for _, gn := range g.Nodes {
			if gn == n {
				found = true
			}
		}
		if !found {
			t.Error("Refresh left a stale node annotation")
		}
	}
}
