// Package ecg implements the paper's Extended Computational Graph (§3.2):
// the computational graph annotated with each operator's mapping type, its
// mathematical properties, and per-value IR_removable flags maintained by
// the fusion planner. It also computes the layer statistics reported in
// Table 5 (compute-intensive vs memory-intensive layer counts, intermediate
// result sizes).
package ecg

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// NodeInfo is the fusion-relevant annotation of one operator node.
type NodeInfo struct {
	// Mapping is the operator's mapping type for its concrete input
	// shapes (broadcast elementwise becomes One-to-Many here).
	Mapping ops.MappingType
	// Props are the operator's mathematical properties.
	Props ops.Properties
	// FLOPs for the node's concrete shapes.
	FLOPs int64
}

// ValueInfo annotates one value (edge).
type ValueInfo struct {
	// IRRemovable is true when the intermediate result can be removed
	// completely: every consumer is fused into the producer's fusion
	// block. Computed during fusion planning (paper §3.2).
	IRRemovable bool
}

// ECG wraps a graph with DNNFusion's annotations.
type ECG struct {
	G     *graph.Graph
	Node  map[*graph.Node]*NodeInfo
	Value map[*graph.Value]*ValueInfo
}

// Build annotates g. The graph is not copied: fusion planning and rewriting
// act on the same underlying graph.
func Build(g *graph.Graph) *ECG {
	e := &ECG{
		G:     g,
		Node:  make(map[*graph.Node]*NodeInfo, len(g.Nodes)),
		Value: make(map[*graph.Value]*ValueInfo, len(g.Values)),
	}
	for _, n := range g.Nodes {
		e.annotate(n)
	}
	for _, v := range g.Values {
		e.Value[v] = &ValueInfo{}
	}
	return e
}

func (e *ECG) annotate(n *graph.Node) {
	shapes := make([]tensor.Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		shapes[i] = in.Shape
	}
	e.Node[n] = &NodeInfo{
		Mapping: n.Op.Mapping(shapes),
		Props:   n.Op.Properties(),
		FLOPs:   n.Op.FLOPs(shapes),
	}
}

// Refresh re-annotates the graph after surgery (rewriting adds and removes
// nodes); stale entries are dropped.
func (e *ECG) Refresh() {
	live := make(map[*graph.Node]bool, len(e.G.Nodes))
	for _, n := range e.G.Nodes {
		live[n] = true
		if _, ok := e.Node[n]; !ok {
			e.annotate(n)
		}
	}
	for n := range e.Node {
		if !live[n] {
			delete(e.Node, n)
		}
	}
	liveV := make(map[*graph.Value]bool, len(e.G.Values))
	for _, v := range e.G.Values {
		liveV[v] = true
		if _, ok := e.Value[v]; !ok {
			e.Value[v] = &ValueInfo{}
		}
	}
	for v := range e.Value {
		if !liveV[v] {
			delete(e.Value, v)
		}
	}
}

// Mapping returns the annotated mapping type of n (annotating on demand
// after surgery).
func (e *ECG) Mapping(n *graph.Node) ops.MappingType {
	info, ok := e.Node[n]
	if !ok {
		e.annotate(n)
		info = e.Node[n]
	}
	return info.Mapping
}

// computeIntensive reports whether the node is a compute-intensive layer
// per the paper's Table 5 definition: each input element is used more than
// once (MatMul, Conv and friends).
func computeIntensive(n *graph.Node) bool {
	switch n.Op.Type() {
	case "Conv", "ConvTranspose", "MatMul", "Gemm", "Einsum":
		return true
	}
	return false
}

// Stats are the per-model layer statistics of Table 5.
type Stats struct {
	CIL      int   // compute-intensive layers
	MIL      int   // memory-intensive layers
	Total    int   // all layers
	IRSBytes int64 // intermediate result size
	FLOPs    int64
}

// ComputeStats tallies layer counts and intermediate sizes for the graph.
func (e *ECG) ComputeStats() Stats {
	var s Stats
	for _, n := range e.G.Nodes {
		s.Total++
		if computeIntensive(n) {
			s.CIL++
		} else {
			s.MIL++
		}
		s.FLOPs += e.nodeFLOPs(n)
	}
	s.IRSBytes = e.G.IntermediateBytes()
	return s
}

func (e *ECG) nodeFLOPs(n *graph.Node) int64 {
	info, ok := e.Node[n]
	if !ok {
		e.annotate(n)
		info = e.Node[n]
	}
	return info.FLOPs
}
