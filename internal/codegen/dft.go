package codegen

import (
	"fmt"
	"sort"
	"strings"

	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// DFT is the data-flow tree of a fusion block (paper Figure 4): edges point
// from each result to the values it depends on (reversed relative to the
// graph), with one root per block output. Nodes shared between roots or
// reached twice are common subtrees; they are identified and counted once
// (common-subtree elimination).
type DFT struct {
	Block *fusion.Block
	Roots []*graph.Value // block outputs
	// Shared lists interior nodes referenced more than once; their FLOPs
	// are counted once (common sub-tree identification, §4.4.1).
	Shared []*graph.Node
	// FoldedMovement lists interior data-movement nodes folded into index
	// arithmetic (intra-block optimization, Figure 5).
	FoldedMovement []*graph.Node
	// FLOPs is the fused kernel's work with CSE applied; NaiveFLOPs is
	// what tree-shaped recomputation would cost.
	FLOPs      int64
	NaiveFLOPs int64
}

// BuildDFT constructs the data-flow tree of a block.
func BuildDFT(b *fusion.Block) *DFT {
	d := &DFT{Block: b, Roots: b.Outputs()}

	// Reference counts of interior nodes over the reversed edges.
	refs := map[*graph.Node]int{}
	for _, n := range b.Nodes {
		for _, in := range n.Inputs {
			if in.Producer != nil && b.Contains(in.Producer) {
				refs[in.Producer]++
			}
		}
	}
	for _, root := range d.Roots {
		if root.Producer != nil && b.Contains(root.Producer) {
			refs[root.Producer]++
		}
	}
	for _, n := range b.Nodes {
		if refs[n] > 1 {
			d.Shared = append(d.Shared, n)
		}
		if isFoldableMovement(b, n) {
			d.FoldedMovement = append(d.FoldedMovement, n)
		}
		d.FLOPs += nodeFLOPs(n)
	}
	sort.Slice(d.Shared, func(i, j int) bool { return d.Shared[i].ID < d.Shared[j].ID })
	sort.Slice(d.FoldedMovement, func(i, j int) bool {
		return d.FoldedMovement[i].ID < d.FoldedMovement[j].ID
	})

	// Naive cost: full tree expansion (each shared subtree recomputed at
	// every reference).
	memo := map[*graph.Node]int64{}
	var treeCost func(n *graph.Node) int64
	treeCost = func(n *graph.Node) int64 {
		if v, ok := memo[n]; ok {
			return v
		}
		total := nodeFLOPs(n)
		for _, in := range n.Inputs {
			if in.Producer != nil && b.Contains(in.Producer) {
				total += treeCost(in.Producer)
			}
		}
		memo[n] = total
		return total
	}
	for _, root := range d.Roots {
		if root.Producer != nil && b.Contains(root.Producer) {
			d.NaiveFLOPs += treeCost(root.Producer)
		}
	}
	if d.NaiveFLOPs < d.FLOPs {
		d.NaiveFLOPs = d.FLOPs
	}
	return d
}

// CSESavings is the FLOPs avoided by common-subtree elimination.
func (d *DFT) CSESavings() int64 { return d.NaiveFLOPs - d.FLOPs }

// isFoldableMovement reports whether n is a pure data-movement operator
// whose outputs stay inside the block: its materialization is eliminated
// and replaced by an index transform (Figure 5).
func isFoldableMovement(b *fusion.Block, n *graph.Node) bool {
	if _, ok := n.Op.(interface {
		MapIndex(in []tensor.Shape, outNo int, outIdx []int, dst []int) (int, []int)
	}); !ok {
		return false
	}
	for _, out := range n.Outputs {
		if out.Kind == graph.Output {
			return false
		}
		for _, c := range out.Consumers {
			if !b.Contains(c) {
				return false
			}
		}
	}
	return true
}

func nodeFLOPs(n *graph.Node) int64 {
	shapes := make([]tensor.Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		shapes[i] = in.Shape
	}
	return n.Op.FLOPs(shapes)
}

// StructuralKey canonicalizes the block for the kernel cache: operators,
// attributes, internal wiring, and exterior shapes — but no model-specific
// names — so an identical fused pattern in another model hits the cache
// (§4.4.1: "once a new operator is generated ... it can be used for both
// the current model and future models").
func StructuralKey(b *fusion.Block) string {
	// Deterministic node order: by topological level then ID.
	nodes := append([]*graph.Node(nil), b.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	localID := map[*graph.Node]int{}
	for i, n := range nodes {
		localID[n] = i
	}
	extID := map[*graph.Value]int{}
	var sb strings.Builder
	for i, n := range nodes {
		fmt.Fprintf(&sb, "%d:%s(", i, opKey(n))
		for j, in := range n.Inputs {
			if j > 0 {
				sb.WriteByte(',')
			}
			if in.Producer != nil && b.Contains(in.Producer) {
				fmt.Fprintf(&sb, "n%d.%d", localID[in.Producer], in.ProducerOut)
			} else {
				id, ok := extID[in]
				if !ok {
					id = len(extID)
					extID[in] = id
				}
				kind := "x"
				if in.IsConst() {
					kind = "w"
				}
				fmt.Fprintf(&sb, "%s%d%s", kind, id, in.Shape)
			}
		}
		sb.WriteString(");")
	}
	return sb.String()
}

func opKey(n *graph.Node) string {
	k := n.Op.AttrKey()
	if k == "" {
		return n.Op.Type()
	}
	return n.Op.Type() + "[" + k + "]"
}
