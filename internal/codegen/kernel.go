package codegen

import (
	"fmt"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Layout is the data layout a kernel computes in; the inter-block
// optimization picks one per block from its dominant operator (§4.4.2).
type Layout string

const (
	LayoutNCHW     Layout = "NCHW"
	LayoutNHWC     Layout = "NHWC"
	LayoutRowMajor Layout = "row-major"
)

// Kernel is the compiled form of a fusion block.
type Kernel struct {
	Name  string
	Key   string
	Block *fusion.Block
	DFT   *DFT

	Inputs  []*graph.Value
	Outputs []*graph.Value

	// Rules lists the Table 3 code-generation rules invoked while
	// stitching the block, in fusion order.
	Rules []GenRule
	// Layout is the block's layout, chosen by the dominant operator.
	Layout Layout
	// DominantOp is the operator that chose the layout.
	DominantOp string

	// SourceCPU / SourceGPU hold the emitted kernel source.
	SourceCPU string
	SourceGPU string

	// Schedule is the tuner-selected tile schedule of a heavy kernel,
	// attached by the compiler after code generation (core.Compile) and
	// applied to the kernel's Source trees at bind time. A zero schedule
	// leaves the operators' built-in default blocking in place. TaskM/
	// TaskN/TaskK record the GEMM-shape tuning task the schedule was
	// selected for (see ScheduleTask), so benchmarks can explain the
	// choice.
	Schedule            ops.Schedule
	TaskM, TaskN, TaskK int
	// ProducerSchedule is the second schedule of a chain-fused kernel
	// (Block.Chain != nil): it tiles the chain's producer contraction, and
	// its column panel is the online softmax's key-panel width. Zero for
	// ordinary kernels; applied together with Schedule via
	// ops.ApplyChainSchedule at bind time.
	ProducerSchedule ops.Schedule

	// Cost profile used by the device model.
	FLOPs      int64
	ReadBytes  int64
	WriteBytes int64
	OpCount    int
	// Disruption counts Shuffle/One-to-Many operators fused into the
	// block; the device model charges heavy kernels for the resulting
	// strided access (the yellow-cell effect of Table 3).
	Disruption int
}

// artifact is the reusable generated code for a block structure. The cache
// stores artifacts, not kernels: the emitted implementation is shared
// across every structurally identical fusion site in this or future models,
// while each Kernel keeps its own per-site wiring (values, tensors).
type artifact struct {
	Name      string
	SourceCPU string
	SourceGPU string
}

// Cache deduplicates generated kernel code structurally within and across
// models.
type Cache struct {
	artifacts map[string]*artifact
	Hits      int
	Misses    int
}

// NewCache returns an empty kernel cache.
func NewCache() *Cache { return &Cache{artifacts: map[string]*artifact{}} }

// Size returns the number of distinct generated kernel implementations.
func (c *Cache) Size() int { return len(c.artifacts) }

// Compile builds the kernel for a fusion block, reusing the generated
// implementation from the cache when a structurally identical block was
// compiled before. The returned bool reports a cache hit.
func Compile(e *ecg.ECG, b *fusion.Block, cache *Cache) (*Kernel, bool, error) {
	key := StructuralKey(b)
	dft := BuildDFT(b)
	k := &Kernel{
		Name:    fmt.Sprintf("dnnf_kernel_%s", shortHash(key)),
		Key:     key,
		Block:   b,
		DFT:     dft,
		Inputs:  b.Inputs(),
		Outputs: dft.Roots,
		FLOPs:   dft.FLOPs,
		OpCount: b.Size(),
	}
	for _, in := range k.Inputs {
		k.ReadBytes += in.Shape.Bytes()
	}
	for _, out := range k.Outputs {
		k.WriteBytes += out.Shape.Bytes()
	}
	if err := k.planRules(e); err != nil {
		return nil, false, err
	}
	for _, n := range b.Nodes {
		switch e.Mapping(n) {
		case ops.Shuffle, ops.OneToMany:
			k.Disruption++
		}
	}
	k.chooseLayout(e)
	if cache != nil {
		if a, ok := cache.artifacts[key]; ok {
			cache.Hits++
			k.Name, k.SourceCPU, k.SourceGPU = a.Name, a.SourceCPU, a.SourceGPU
			return k, true, nil
		}
	}
	k.SourceCPU = emit(k, CPU)
	k.SourceGPU = emit(k, GPU)
	if cache != nil {
		cache.artifacts[key] = &artifact{Name: k.Name, SourceCPU: k.SourceCPU, SourceGPU: k.SourceGPU}
		cache.Misses++
	}
	return k, false, nil
}

// planRules replays the block's fusion order through the Table 3 rule
// table, recording the strategy for every pairwise fusion (Figure 4's
// "fused code generation for each pair of operators").
func (k *Kernel) planRules(e *ecg.ECG) error {
	if k.Block.Size() < 2 {
		return nil
	}
	if c := k.Block.Chain; c != nil {
		// Chain-fused blocks hold two ManyToMany contractions — a red pair
		// under Table 3's pairwise rules, fused on purpose by the streaming
		// chain kernel. Record the single chain-stream rule instead of
		// replaying the pairwise table.
		note := "contraction chain: producer row tiles stream into consumer"
		if c.Online {
			note = "contraction chain: online-softmax (streaming rescale) attention"
		}
		k.Rules = append(k.Rules, GenRule{
			First:    ops.ManyToMany,
			Second:   ops.ManyToMany,
			Decision: fusion.FuseThrough,
			Strategy: ChainStream,
			Note:     note,
		})
		return nil
	}
	acc := e.Mapping(k.Block.Nodes[0])
	for _, n := range k.Block.Nodes[1:] {
		m := e.Mapping(n)
		rule, ok := lookupRule(CPU, acc, m)
		if !ok {
			// Fall back to the predecessor orientation (the planner
			// fused this node in front of the block).
			rule, ok = lookupRule(CPU, m, acc)
			if !ok {
				return fmt.Errorf("codegen: %s: red pair %v+%v reached code generation",
					k.Name, acc, m)
			}
			acc, _ = fusion.Combine(m, acc)
		} else {
			acc, _ = fusion.Combine(acc, m)
		}
		k.Rules = append(k.Rules, rule)
	}
	return nil
}

// chooseLayout implements the inter-block optimization: the operator whose
// performance is most layout-sensitive (largest FLOPs among Conv/GEMM-like
// and Softmax ops, falling back to the biggest op) dictates the layout for
// the whole block.
func (k *Kernel) chooseLayout(e *ecg.ECG) {
	var dom *graph.Node
	var domFLOPs int64 = -1
	for _, n := range k.Block.Nodes {
		f := nodeFLOPs(n)
		if layoutSensitive(n.Op.Type()) {
			f += 1 << 40 // layout-sensitive ops dominate regardless of size
		}
		if f > domFLOPs {
			domFLOPs = f
			dom = n
		}
	}
	k.DominantOp = dom.Op.Type()
	k.Layout = preferredLayout(dom.Op.Type())
}

func layoutSensitive(opType string) bool {
	switch opType {
	case "Conv", "ConvTranspose", "MatMul", "Gemm", "Einsum", "Softmax":
		return true
	}
	return false
}

// Heavy reports whether the kernel contains compute-bound (Conv/GEMM-class)
// work; the device model prices heavy and light kernels differently.
func (k *Kernel) Heavy() bool {
	for _, n := range k.Block.Nodes {
		switch n.Op.Type() {
		case "Conv", "ConvTranspose", "MatMul", "Gemm", "Einsum":
			return true
		}
	}
	return false
}

// ScheduleTask derives the kernel's schedule-tuning task: the GEMM-shape
// (M, N, K) of its FLOPs-dominant schedulable heavy operator. ok is false
// for kernels with nothing to schedule (light kernels, or heavy kernels
// whose only contraction is an Einsum/ConvTranspose that evaluates
// scalar).
func (k *Kernel) ScheduleTask() (m, n, kk int, ok bool) {
	var best int64 = -1
	for _, nd := range k.Block.Nodes {
		shapes := make([]tensor.Shape, len(nd.Inputs))
		for i, in := range nd.Inputs {
			shapes[i] = in.Shape
		}
		tm, tn, tk, tok := ops.ScheduleTaskDims(nd.Op, shapes)
		if !tok {
			continue
		}
		if f := nd.Op.FLOPs(shapes); f > best {
			best = f
			m, n, kk, ok = tm, tn, tk, true
		}
	}
	return m, n, kk, ok
}

// ChainScheduleTasks derives the two tuning tasks of a chain-fused kernel:
// the producer contraction's GEMM shape and the consumer's. ok is false
// for non-chain kernels.
func (k *Kernel) ChainScheduleTasks() (pm, pn, pk, cm, cn, ck int, ok bool) {
	c := k.Block.Chain
	if c == nil {
		return 0, 0, 0, 0, 0, 0, false
	}
	dims := func(nd *graph.Node) (int, int, int, bool) {
		shapes := make([]tensor.Shape, len(nd.Inputs))
		for i, in := range nd.Inputs {
			shapes[i] = in.Shape
		}
		return ops.ScheduleTaskDims(nd.Op, shapes)
	}
	var pok, cok bool
	pm, pn, pk, pok = dims(c.Producer)
	cm, cn, ck, cok = dims(c.Consumer)
	return pm, pn, pk, cm, cn, ck, pok && cok
}

// FoldedMovementBytes is the traffic the intra-block optimization avoids:
// the write+read of every interior data-movement result folded into index
// arithmetic (Figure 5). The engine charges it back when that optimization
// is disabled.
func (k *Kernel) FoldedMovementBytes() int64 {
	var total int64
	for _, n := range k.DFT.FoldedMovement {
		for _, out := range n.Outputs {
			total += 2 * out.Shape.Bytes()
		}
	}
	return total
}

func preferredLayout(opType string) Layout {
	switch opType {
	case "Conv", "ConvTranspose", "MaxPool", "AveragePool":
		return LayoutNCHW
	case "MatMul", "Gemm", "Einsum", "Softmax":
		return LayoutRowMajor
	default:
		return LayoutNCHW
	}
}

// Ranger is work that can evaluate any sub-range of an output's row-major
// index space on a numbered worker lane. Lanes own disjoint scratch, so
// distinct lanes may run concurrently; a single lane belongs to one
// goroutine at a time.
type Ranger interface {
	RunRange(lane, lo, hi int)
}

// Parallelizer is the executor-provided parallel-for a BoundKernel splits
// its output ranges over: For covers [0, total) with grain-sized chunks,
// calling r.RunRange with distinct lanes in [0, Lanes()), and returns only
// when every chunk is done. Lane 0 is the calling goroutine.
type Parallelizer interface {
	Lanes() int
	For(total, grain int, r Ranger)
}

// Parallel chunk sizing: a chunk should carry enough arithmetic to
// amortize a dispatch (parGrainFLOPs), never fall under parMinGrain output
// elements, and a single output should never shatter into more than
// 4×lanes chunks — heavy operators with staged operands re-stage per
// chunk, so chunk count is kept bounded.
const (
	parGrainFLOPs = 32768
	parMinGrain   = 256
)

// BoundKernel is a kernel bound to concrete input tensors and destination
// buffers: the Source trees are composed once at bind time (per session),
// so ExecuteInto evaluates the fused block without building closures,
// maps, or result tensors — the steady-state hot path performs zero heap
// allocations. When bound with a Parallelizer, one independent Source tree
// is composed per worker lane (Sources carry scratch, so a tree belongs to
// one goroutine at a time) and large outputs are split across lanes.
// A BoundKernel belongs to one driving goroutine at a time; distinct
// sessions bind their own.
type BoundKernel struct {
	k    *Kernel
	par  Parallelizer
	outs []boundOutput
}

type boundOutput struct {
	// srcs[lane] is lane's independently composed Source tree; idxs[lane]
	// its unravel scratch for the scalar fallback.
	srcs  []ops.Source
	idxs  [][]int
	dst   *tensor.Tensor
	elems int
	grain int
}

// RunRange evaluates output elements [lo, hi) on the given lane; it
// implements Ranger so a Parallelizer can drive the output directly.
func (o *boundOutput) RunRange(lane, lo, hi int) {
	ops.MaterializeRange(o.srcs[lane], o.dst, o.idxs[lane], lo, hi)
}

// Bind composes the kernel's Source tree over stable exterior inputs and
// pairs each block output with its destination tensor; the bound kernel
// executes serially. See BindParallel for the multi-lane form.
func (k *Kernel) Bind(resolve func(v *graph.Value) (*tensor.Tensor, error), dsts []*tensor.Tensor) (*BoundKernel, error) {
	return k.BindParallel(resolve, dsts, nil)
}

// BindParallel composes the kernel's Source trees over stable exterior
// inputs and pairs each block output with its destination tensor. resolve
// supplies the tensor backing every exterior input — the planned-arena
// executor resolves weights to their constant data and everything else to
// arena-slot views that stay valid across runs. dsts must parallel
// k.Outputs and have the outputs' shapes.
//
// With a non-nil Parallelizer, one Source tree per lane is composed so
// ExecuteInto can evaluate disjoint output ranges concurrently; par must
// then be the same parallelizer passed to every kernel of the session.
func (k *Kernel) BindParallel(resolve func(v *graph.Value) (*tensor.Tensor, error), dsts []*tensor.Tensor, par Parallelizer) (*BoundKernel, error) {
	if len(dsts) != len(k.Outputs) {
		return nil, fmt.Errorf("codegen: %s: %d destinations for %d outputs", k.Name, len(dsts), len(k.Outputs))
	}
	lanes := 1
	if par != nil {
		lanes = par.Lanes()
	}
	if lanes < 1 {
		lanes = 1
	}
	bk := &BoundKernel{k: k, outs: make([]boundOutput, len(k.Outputs))}
	if lanes > 1 {
		bk.par = par
	}

	var totalElems int64
	for i, o := range k.Outputs {
		if !dsts[i].Shape().Equal(o.Shape) {
			return nil, fmt.Errorf("codegen: %s: destination %d has shape %v, output is %v",
				k.Name, i, dsts[i].Shape(), o.Shape)
		}
		totalElems += int64(o.Shape.NumElements())
	}
	flopsPerElem := int64(1)
	if totalElems > 0 && k.FLOPs > totalElems {
		flopsPerElem = k.FLOPs / totalElems
	}

	for lane := 0; lane < lanes; lane++ {
		srcOf := map[*graph.Value]ops.Source{}
		var build func(v *graph.Value) (ops.Source, error)
		build = func(v *graph.Value) (ops.Source, error) {
			if s, ok := srcOf[v]; ok {
				return s, nil
			}
			if v.Producer == nil || !k.Block.Contains(v.Producer) {
				t, err := resolve(v)
				if err != nil {
					return nil, fmt.Errorf("codegen: %s: %w", k.Name, err)
				}
				if !t.Shape().Equal(v.Shape) {
					return nil, fmt.Errorf("codegen: %s: input %v fed with shape %v", k.Name, v, t.Shape())
				}
				s := ops.AsSource(t)
				srcOf[v] = s
				return s, nil
			}
			n := v.Producer
			ins := make([]ops.Source, len(n.Inputs))
			for i, in := range n.Inputs {
				s, err := build(in)
				if err != nil {
					return nil, err
				}
				ins[i] = s
			}
			s, err := n.Op.Virtualize(ins, v.ProducerOut)
			if err != nil {
				return nil, fmt.Errorf("codegen: %s: %v: %w", k.Name, n, err)
			}
			srcOf[v] = s
			return s, nil
		}
		for i, o := range k.Outputs {
			s, err := build(o)
			if err != nil {
				return nil, err
			}
			// Bind time is where the compile-time schedule artifact meets
			// the Source tree: every lane's independently composed heavy
			// sources adopt the kernel's tuned blocking (and size their
			// accumulator scratch) here, so the steady-state hot path
			// still allocates nothing.
			if !k.Schedule.Zero() {
				if k.Block.Chain != nil && !k.ProducerSchedule.Zero() {
					ops.ApplyChainSchedule(s, k.Schedule, k.ProducerSchedule)
				} else {
					ops.ApplySchedule(s, k.Schedule)
				}
			}
			bo := &bk.outs[i]
			if lane == 0 {
				elems := o.Shape.NumElements()
				grain := int(parGrainFLOPs / flopsPerElem)
				if grain < parMinGrain {
					grain = parMinGrain
				}
				if floor := elems / (4 * lanes); grain < floor {
					grain = floor
				}
				if ops.HasStagedOperand(s) {
					// Staged operands re-stream per LoadBlock call, so
					// cap this output at one chunk per lane: staging then
					// happens once per lane per run, concurrently.
					if floor := (elems + lanes - 1) / lanes; grain < floor {
						grain = floor
					}
				}
				if span := ops.TileSpan(s); span > 0 {
					// Round the grain up to whole row tiles: pool chunks
					// start at multiples of the grain, so worker lanes
					// split the output on tile boundaries and no chunk
					// degrades the tiled path mid-tile.
					grain = (grain + span - 1) / span * span
				}
				*bo = boundOutput{
					srcs:  make([]ops.Source, lanes),
					idxs:  make([][]int, lanes),
					dst:   dsts[i],
					elems: elems,
					grain: grain,
				}
			}
			bo.srcs[lane] = s
			bo.idxs[lane] = make([]int, o.Shape.Rank())
		}
	}
	return bk, nil
}

// ExecuteInto evaluates the fused block, writing every block output into
// its bound destination. Interior values never exist in memory — precisely
// the intermediate-result elimination that fusion buys — and nothing is
// allocated. Outputs large enough to amortize a dispatch are split across
// the parallelizer's lanes; everything else runs inline on lane 0.
func (b *BoundKernel) ExecuteInto() {
	for i := range b.outs {
		o := &b.outs[i]
		if b.par != nil && o.elems >= 2*o.grain {
			b.par.For(o.elems, o.grain, o)
		} else {
			o.RunRange(0, 0, o.elems)
		}
	}
}

// Execute runs the fused kernel in the pull model, materializing block
// outputs into fresh tensors. env must hold every exterior input (weights
// may be omitted; their constant data is used directly). It is the
// bind-per-call convenience form of Bind/ExecuteInto; hot paths bind once
// and execute into planned destinations instead.
func (k *Kernel) Execute(env map[*graph.Value]*tensor.Tensor) (map[*graph.Value]*tensor.Tensor, error) {
	resolve := func(v *graph.Value) (*tensor.Tensor, error) {
		t, ok := env[v]
		if !ok {
			if v.Data != nil {
				return v.Data, nil
			}
			return nil, fmt.Errorf("missing exterior input %v", v)
		}
		return t, nil
	}
	dsts := make([]*tensor.Tensor, len(k.Outputs))
	for i, o := range k.Outputs {
		dsts[i] = tensor.NewOf(o.Shape)
	}
	bk, err := k.Bind(resolve, dsts)
	if err != nil {
		return nil, err
	}
	bk.ExecuteInto()
	out := make(map[*graph.Value]*tensor.Tensor, len(k.Outputs))
	for i, o := range k.Outputs {
		out[o] = dsts[i]
	}
	return out, nil
}

// shortHash is a tiny FNV-1a hex digest for kernel names.
func shortHash(s string) string {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%08x", uint32(h^(h>>32)))
}

// CompilePlan compiles every block of a fusion plan, sharing the cache.
func CompilePlan(e *ecg.ECG, plan *fusion.Plan, cache *Cache) ([]*Kernel, error) {
	kernels := make([]*Kernel, 0, len(plan.Blocks))
	for _, b := range plan.Blocks {
		k, _, err := Compile(e, b, cache)
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	return kernels, nil
}
