package codegen

import (
	"fmt"
	"sort"
	"strings"

	"dnnfusion/internal/graph"
)

// emit renders the kernel as C-like source for the mobile CPU backend or
// OpenCL-like source for the mobile GPU backend. The emitted text is the
// artifact the kernel cache shares across models; in the paper's system it
// is compiled by the device toolchain, here it documents exactly what the
// pull-model executor computes (loop nests, index folding, shared-subtree
// temporaries).
func emit(k *Kernel, b Backend) string {
	var sb strings.Builder
	name := k.Name
	if b == GPU {
		name += "_cl"
	}

	fmt.Fprintf(&sb, "// fused operator: %s\n", blockOpNames(k))
	fmt.Fprintf(&sb, "// mapping type: %v; layout: %s (dominant op %s)\n",
		k.Block.Mapping, k.Layout, k.DominantOp)
	if len(k.Rules) > 0 {
		fmt.Fprintf(&sb, "// codegen rules:")
		for _, r := range k.Rules {
			fmt.Fprintf(&sb, " [%v+%v→%s]", r.First, r.Second, r.Strategy)
		}
		sb.WriteString("\n")
	}
	if len(k.DFT.Shared) > 0 {
		fmt.Fprintf(&sb, "// common subtrees hoisted: %d (saves %d FLOPs)\n",
			len(k.DFT.Shared), k.DFT.CSESavings())
	}
	if len(k.DFT.FoldedMovement) > 0 {
		fmt.Fprintf(&sb, "// data movement folded to index arithmetic: %d op(s)\n",
			len(k.DFT.FoldedMovement))
	}

	params := make([]string, 0, len(k.Inputs)+len(k.Outputs))
	names := map[*graph.Value]string{}
	for i, in := range k.Inputs {
		n := fmt.Sprintf("in%d", i)
		if in.IsConst() {
			n = fmt.Sprintf("w%d", i)
		}
		names[in] = n
		qual := "const float* restrict"
		if b == GPU {
			qual = "__global const float*"
		}
		params = append(params, fmt.Sprintf("%s %s /*%s*/", qual, n, in.Shape))
	}
	for i, out := range k.Outputs {
		n := fmt.Sprintf("out%d", i)
		names[out] = n
		qual := "float* restrict"
		if b == GPU {
			qual = "__global float*"
		}
		params = append(params, fmt.Sprintf("%s %s /*%s*/", qual, n, out.Shape))
	}
	if b == GPU {
		fmt.Fprintf(&sb, "__kernel void %s(%s) {\n", name, strings.Join(params, ", "))
	} else {
		fmt.Fprintf(&sb, "void %s(%s) {\n", name, strings.Join(params, ", "))
	}

	p := &printer{k: k, names: names, temps: map[*graph.Node]string{}}
	for oi, out := range k.Outputs {
		p.emitOutput(&sb, b, oi, out)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func blockOpNames(k *Kernel) string {
	names := make([]string, len(k.Block.Nodes))
	for i, n := range k.Block.Nodes {
		names[i] = n.Op.Type()
	}
	return strings.Join(names, "+")
}

type printer struct {
	k     *Kernel
	names map[*graph.Value]string
	temps map[*graph.Node]string
}

func (p *printer) emitOutput(sb *strings.Builder, b Backend, oi int, out *graph.Value) {
	rank := out.Shape.Rank()
	indent := "  "
	idxVars := make([]string, rank)
	if b == GPU {
		fmt.Fprintf(sb, "%s// one work-item per element of out%d\n", indent, oi)
		fmt.Fprintf(sb, "%ssize_t gid%d = get_global_id(%d);\n", indent, oi, oi)
		for i := 0; i < rank; i++ {
			idxVars[i] = fmt.Sprintf("i%d_%d", oi, i)
		}
		fmt.Fprintf(sb, "%s/* decompose gid%d into (%s) over %s */\n",
			indent, oi, strings.Join(idxVars, ", "), out.Shape)
	} else {
		for i := 0; i < rank; i++ {
			idxVars[i] = fmt.Sprintf("i%d_%d", oi, i)
			fmt.Fprintf(sb, "%sfor (int %s = 0; %s < %d; %s++) {\n",
				indent, idxVars[i], idxVars[i], out.Shape[i], idxVars[i])
			indent += "  "
		}
		if rank == 0 {
			sb.WriteString(indent + "{\n")
			indent += "  "
		}
	}

	// Hoist shared subtrees reachable from this root as temporaries.
	shared := map[*graph.Node]bool{}
	for _, n := range p.k.DFT.Shared {
		shared[n] = true
	}
	var hoisted []*graph.Node
	seen := map[*graph.Node]bool{}
	var collect func(v *graph.Value)
	collect = func(v *graph.Value) {
		n := v.Producer
		if n == nil || !p.k.Block.Contains(n) || seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			collect(in)
		}
		if shared[n] {
			hoisted = append(hoisted, n)
		}
	}
	collect(out)
	sort.Slice(hoisted, func(i, j int) bool { return hoisted[i].ID < hoisted[j].ID })
	for _, n := range hoisted {
		if _, done := p.temps[n]; done {
			continue
		}
		tmp := fmt.Sprintf("t%d", n.ID)
		expr := p.expr(n.Inputs, n, idxVars, true)
		fmt.Fprintf(sb, "%sfloat %s = %s; // shared subtree\n", indent, tmp, expr)
		p.temps[n] = tmp
	}

	expr := p.value(out, idxVars)
	fmt.Fprintf(sb, "%s%s[%s] = %s;\n", indent, p.names[out], strings.Join(idxVars, "]["), expr)
	if b == GPU {
		return
	}
	closes := rank
	if rank == 0 {
		closes = 1
	}
	for i := 0; i < closes; i++ {
		indent = indent[:len(indent)-2]
		fmt.Fprintf(sb, "%s}\n", indent)
	}
}

// value renders the expression computing v at the given index variables.
func (p *printer) value(v *graph.Value, idx []string) string {
	n := v.Producer
	if n == nil || !p.k.Block.Contains(n) {
		return fmt.Sprintf("%s[%s]", p.names[v], strings.Join(broadcastIdx(v, idx), ","))
	}
	if tmp, ok := p.temps[n]; ok {
		return tmp
	}
	return p.expr(n.Inputs, n, idx, false)
}

// broadcastIdx right-aligns the index variables against the value's rank
// and zeroes broadcast (size-1) dimensions, matching runtime semantics.
func broadcastIdx(v *graph.Value, idx []string) []string {
	rank := v.Shape.Rank()
	if rank == 0 {
		return []string{"0"}
	}
	if rank > len(idx) {
		return idx
	}
	out := make([]string, rank)
	off := len(idx) - rank
	for i := 0; i < rank; i++ {
		if v.Shape[i] == 1 {
			out[i] = "0"
		} else {
			out[i] = idx[off+i]
		}
	}
	return out
}

// expr renders an operator application. Data-movement operators become
// index transforms (intra-block optimization); heavy operators become
// reduction pseudo-loops; pointwise operators compose scalar expressions.
func (p *printer) expr(ins []*graph.Value, n *graph.Node, idx []string, forTemp bool) string {
	opT := n.Op.Type()
	switch opT {
	case "Add", "Sub", "Mul", "Div", "Min", "Max", "PowT":
		sym := map[string]string{"Add": "+", "Sub": "-", "Mul": "*", "Div": "/",
			"Min": "fmin", "Max": "fmax", "PowT": "powf"}[opT]
		a, b := p.value(ins[0], idx), p.value(ins[1], idx)
		if sym == "+" || sym == "-" || sym == "*" || sym == "/" {
			return fmt.Sprintf("(%s %s %s)", a, sym, b)
		}
		return fmt.Sprintf("%s(%s, %s)", sym, a, b)
	case "Reshape", "Flatten", "Squeeze", "Unsqueeze", "Transpose", "Slice",
		"Split", "Concat", "Expand", "Resize", "Upsample", "DepthToSpace", "SpaceToDepth":
		// Index fold: the consumer reads through the transform.
		return fmt.Sprintf("/*%s:index-fold*/ %s", strings.ToLower(opT),
			p.value(ins[0], remap(opT, idx)))
	case "Conv", "ConvTranspose", "MatMul", "Gemm", "Einsum":
		args := make([]string, len(ins))
		for i, in := range ins {
			args[i] = p.value(in, []string{"k..."})
		}
		return fmt.Sprintf("reduce_mac[%s](%s)", strings.ToLower(opT), strings.Join(args, ", "))
	case "Softmax", "LogSoftmax", "ReduceSum", "ReduceMean", "ReduceProd",
		"ReduceMax", "ReduceMin", "CumSum", "MaxPool", "AveragePool",
		"GlobalAveragePool", "InstanceNormalization":
		return fmt.Sprintf("reduce[%s](%s)", strings.ToLower(opT), p.value(ins[0], []string{"r..."}))
	case "Gather":
		return fmt.Sprintf("%s[idx(%s)]", p.value(ins[0], []string{"g..."}),
			p.value(ins[1], idx))
	case "Where":
		return fmt.Sprintf("(%s ? %s : %s)", p.value(ins[0], idx), p.value(ins[1], idx), p.value(ins[2], idx))
	case "BatchNormalization":
		return fmt.Sprintf("bnorm(%s)", p.value(ins[0], idx))
	default:
		// Unary pointwise and everything else: functional form.
		args := make([]string, len(ins))
		for i, in := range ins {
			args[i] = p.value(in, idx)
		}
		return fmt.Sprintf("%s(%s)", strings.ToLower(opT), strings.Join(args, ", "))
	}
}

// remap annotates index variables with the movement op's transform.
func remap(opT string, idx []string) []string {
	out := make([]string, len(idx))
	for i, v := range idx {
		out[i] = fmt.Sprintf("σ_%s(%s)", strings.ToLower(opT), v)
	}
	if len(out) == 0 {
		out = []string{"σ_" + strings.ToLower(opT)}
	}
	return out
}
