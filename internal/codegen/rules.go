// Package codegen implements DNNFusion's fusion code generation (§4.4):
// it turns fusion blocks into kernels by building a data-flow tree (DFT),
// eliminating common subtrees, applying the per-mapping-type code
// generation rules, folding interior data-movement operators into index
// arithmetic (intra-block optimization, Figure 5), selecting the block
// layout by dominant operator (inter-block optimization), and emitting
// C-like (mobile CPU) and OpenCL-like (mobile GPU) kernel source. Kernels
// are cached structurally, so an operator generated once is reused for the
// current and future models.
package codegen

import (
	"fmt"

	"dnnfusion/internal/fusion"
	"dnnfusion/internal/ops"
)

// Backend selects the emission target.
type Backend int

const (
	CPU Backend = iota // C-like source, loop nests, NEON-style hints
	GPU                // OpenCL-like source, one work-item per output element
)

func (b Backend) String() string {
	if b == GPU {
		return "GPU"
	}
	return "CPU"
}

// Strategy names how a pair of operators is stitched together during DFT
// traversal; one strategy instance per green/yellow cell of Table 3 and per
// backend gives the paper's 23 rules for each of CPU and GPU.
type Strategy string

const (
	// ScalarCompose: both operators become one scalar expression
	// (One-to-One chains).
	ScalarCompose Strategy = "scalar-compose"
	// IndexFold: the data-movement operator disappears into the index
	// computation of its consumer/producer (Reorganize/Shuffle cases).
	IndexFold Strategy = "index-fold"
	// Epilogue: the second operator post-processes each element the
	// first (Many-to-Many) operator produces (Conv+ReLU).
	Epilogue Strategy = "epilogue"
	// PrologueLoad: the first operator is evaluated on demand inside the
	// second operator's loads (Add feeding GEMM, Expand feeding Add).
	PrologueLoad Strategy = "prologue-load"
	// ReplicatedStore: a One-to-Many second operator fans each produced
	// element out to several destinations (Conv+Expand, profiled case).
	ReplicatedStore Strategy = "replicated-store"
	// ChainStream fuses two ManyToMany contractions (a Table 3 red pair)
	// by streaming the producer's row tiles straight into the consumer —
	// the contraction-chain exception executed by ops' chain kernel
	// (online-softmax in between for attention chains).
	ChainStream Strategy = "chain-stream"
)

// GenRule is one code-generation rule: how to fuse a (first, second)
// mapping-type pair on a backend.
type GenRule struct {
	First, Second ops.MappingType
	Decision      fusion.Decision
	Strategy      Strategy
	// Note documents the backend-specific consideration.
	Note string
}

// RulesFor returns the backend's code-generation rule table: exactly one
// rule per non-red cell of Table 3 (23 rules).
func RulesFor(b Backend) []GenRule {
	var rules []GenRule
	for _, first := range ops.AllMappingTypes() {
		for _, second := range ops.AllMappingTypes() {
			_, d := fusion.Combine(first, second)
			if d == fusion.FuseBreak {
				continue
			}
			rules = append(rules, GenRule{
				First:    first,
				Second:   second,
				Decision: d,
				Strategy: strategyFor(first, second),
				Note:     noteFor(b, first, second),
			})
		}
	}
	return rules
}

func strategyFor(first, second ops.MappingType) Strategy {
	switch {
	case first == ops.OneToOne && second == ops.OneToOne:
		return ScalarCompose
	case second == ops.ManyToMany:
		// The heavy op pulls its operands through the first op's loads.
		return PrologueLoad
	case first == ops.ManyToMany && second == ops.OneToMany:
		return ReplicatedStore
	case first == ops.ManyToMany:
		return Epilogue
	case first == ops.Reorganize || first == ops.Shuffle ||
		second == ops.Reorganize || second == ops.Shuffle:
		return IndexFold
	case second == ops.OneToMany || first == ops.OneToMany:
		return PrologueLoad
	default:
		return ScalarCompose
	}
}

func noteFor(b Backend, first, second ops.MappingType) string {
	if b == GPU {
		return fmt.Sprintf("one work-item per output element; %v→%v stitched in-register", first, second)
	}
	return fmt.Sprintf("fused loop nest; %v→%v stitched without materialization", first, second)
}

// lookupRule finds the rule for a pair; ok is false for red cells, which
// the planner never emits but codegen still guards against.
func lookupRule(b Backend, first, second ops.MappingType) (GenRule, bool) {
	_, d := fusion.Combine(first, second)
	if d == fusion.FuseBreak {
		return GenRule{}, false
	}
	return GenRule{First: first, Second: second, Decision: d,
		Strategy: strategyFor(first, second), Note: noteFor(b, first, second)}, true
}
