package codegen

import (
	"strings"
	"testing"
	"testing/quick"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// buildFig4 reproduces Figure 4: Out = Recip(IRS2) + Square(IRS2) with
// IRS2 = (A·B) ⊙ C shared between both branches (common subtree), then a
// GEMM feeding it. Slightly simplified to stay single-output.
func buildFig4(t *testing.T) (*graph.Graph, *ecg.ECG, *fusion.Plan) {
	t.Helper()
	g := graph.New("fig4")
	a := g.AddInput("A", tensor.Of(4, 6))
	b := g.AddWeight("B", tensor.New(6, 5).Rand(1))
	cw := g.AddWeight("C", tensor.New(4, 5).Rand(2))
	mm := g.Apply1(ops.NewMatMul(), a, b)  // IRS1 = A·B
	irs2 := g.Apply1(ops.NewMul(), mm, cw) // IRS2 = IRS1 ⊙ C
	rec := g.Apply1(ops.NewReciprocal(), irs2)
	sq := g.Apply1(ops.NewSquare(), irs2) // shares IRS2
	out := g.Apply1(ops.NewAdd(), rec, sq)
	g.MarkOutput(out)
	if err := g.Validate(); err != nil {
		t.Fatalf("fig4 invalid: %v", err)
	}
	e := ecg.Build(g)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	return g, e, plan
}

func feedsFor(g *graph.Graph, seed uint64) map[*graph.Value]*tensor.Tensor {
	feeds := map[*graph.Value]*tensor.Tensor{}
	for i, in := range g.Inputs {
		x := tensor.NewOf(in.Shape).Rand(seed + uint64(i))
		for off, v := range x.Data() {
			x.Data()[off] = v*0.4 + 0.6
		}
		feeds[in] = x
	}
	return feeds
}

// runPlan executes every kernel of the plan in order.
func runPlan(t *testing.T, g *graph.Graph, e *ecg.ECG, plan *fusion.Plan, cache *Cache,
	feeds map[*graph.Value]*tensor.Tensor) map[*graph.Value]*tensor.Tensor {
	t.Helper()
	kernels, err := CompilePlan(e, plan, cache)
	if err != nil {
		t.Fatalf("compile plan: %v", err)
	}
	env := map[*graph.Value]*tensor.Tensor{}
	for v, x := range feeds {
		env[v] = x
	}
	for _, k := range kernels {
		outs, err := k.Execute(env)
		if err != nil {
			t.Fatalf("execute %s: %v", k.Name, err)
		}
		for v, x := range outs {
			env[v] = x
		}
	}
	return env
}

func TestFusedMatchesUnfused(t *testing.T) {
	g, e, plan := buildFig4(t)
	feeds := feedsFor(g, 11)
	want, err := graph.InterpretOutputs(g, feeds)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	env := runPlan(t, g, e, plan, NewCache(), feeds)
	for i, out := range g.Outputs {
		got, ok := env[out]
		if !ok {
			t.Fatalf("output %d not produced by fused execution", i)
		}
		if !tensor.AllClose(got, want[i], 1e-4) {
			t.Errorf("fused output %d differs (max diff %g)", i, tensor.MaxAbsDiff(got, want[i]))
		}
	}
}

// Property: fused execution equals reference interpretation on random
// diamond-shaped graphs (the core legality property of operator fusion).
func TestFusionCorrectnessProperty(t *testing.T) {
	unaries := []func() ops.Operator{
		ops.NewRelu, ops.NewAbs, ops.NewSigmoid, ops.NewTanh,
		func() ops.Operator { return ops.NewLeakyRelu(0.1) }, ops.NewSquare,
	}
	f := func(seed uint64, aIdx, bIdx, cIdx uint8) bool {
		g := graph.New("prop")
		x := g.AddInput("x", tensor.Of(3, 4))
		w := g.AddWeight("w", tensor.New(4, 5).Rand(seed))
		mm := g.Apply1(ops.NewMatMul(), x, w)
		u1 := g.Apply1(unaries[int(aIdx)%len(unaries)](), mm)
		u2 := g.Apply1(unaries[int(bIdx)%len(unaries)](), u1)
		u3 := g.Apply1(unaries[int(cIdx)%len(unaries)](), u1) // diamond
		out := g.Apply1(ops.NewAdd(), u2, u3)
		tr := g.Apply1(ops.NewTranspose(1, 0), out)
		g.MarkOutput(tr)
		e := ecg.Build(g)
		plan := fusion.GeneratePlan(e, fusion.Options{})
		feeds := feedsFor(g, seed)
		want, err := graph.InterpretOutputs(g, feeds)
		if err != nil {
			return false
		}
		kernels, err := CompilePlan(e, plan, nil)
		if err != nil {
			return false
		}
		env := map[*graph.Value]*tensor.Tensor{}
		for v, t := range feeds {
			env[v] = t
		}
		for _, k := range kernels {
			outs, err := k.Execute(env)
			if err != nil {
				return false
			}
			for v, t := range outs {
				env[v] = t
			}
		}
		return tensor.AllClose(env[g.Outputs[0]], want[0], 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDFTSharedSubtreeAndCSE(t *testing.T) {
	_, _, plan := buildFig4(t)
	var fusedBlock *fusion.Block
	for _, b := range plan.Blocks {
		if b.Size() > 1 {
			fusedBlock = b
		}
	}
	if fusedBlock == nil {
		t.Fatal("no fused block in Figure 4 plan")
	}
	dft := BuildDFT(fusedBlock)
	if len(dft.Shared) == 0 {
		t.Error("shared IRS2 subtree not identified")
	}
	if dft.CSESavings() <= 0 {
		t.Errorf("CSE savings = %d, want > 0", dft.CSESavings())
	}
	if dft.FLOPs >= dft.NaiveFLOPs {
		t.Errorf("deduped FLOPs %d !< naive %d", dft.FLOPs, dft.NaiveFLOPs)
	}
}

func TestKernelCacheAcrossModels(t *testing.T) {
	cache := NewCache()
	g1, e1, p1 := buildFig4(t)
	if _, err := CompilePlan(e1, p1, cache); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := cache.Misses
	if cache.Hits != 0 {
		t.Errorf("unexpected hits on first model: %d", cache.Hits)
	}
	// A second, structurally identical "model" must hit the cache.
	g2, e2, p2 := buildFig4(t)
	if _, err := CompilePlan(e2, p2, cache); err != nil {
		t.Fatal(err)
	}
	if cache.Hits != missesAfterFirst {
		t.Errorf("hits = %d, want %d (full reuse across models)", cache.Hits, missesAfterFirst)
	}
	_ = g1
	_ = g2
}

func TestRuleTableHas23Rules(t *testing.T) {
	for _, b := range []Backend{CPU, GPU} {
		rules := RulesFor(b)
		if len(rules) != 23 {
			t.Errorf("%v rule count = %d, want 23 (one per non-red Table 3 cell)", b, len(rules))
		}
		seen := map[string]bool{}
		for _, r := range rules {
			key := r.First.String() + "+" + r.Second.String()
			if seen[key] {
				t.Errorf("%v duplicate rule %s", b, key)
			}
			seen[key] = true
			if r.Strategy == "" {
				t.Errorf("%v rule %s missing strategy", b, key)
			}
		}
	}
	// Spot strategies.
	if r, ok := lookupRule(CPU, ops.ManyToMany, ops.OneToOne); !ok || r.Strategy != Epilogue {
		t.Errorf("Conv+ReLU strategy = %v, want epilogue", r.Strategy)
	}
	if r, ok := lookupRule(CPU, ops.OneToOne, ops.ManyToMany); !ok || r.Strategy != PrologueLoad {
		t.Errorf("Add+GEMM strategy = %v, want prologue-load", r.Strategy)
	}
	if r, ok := lookupRule(CPU, ops.OneToOne, ops.OneToOne); !ok || r.Strategy != ScalarCompose {
		t.Errorf("1-1+1-1 strategy = %v, want scalar-compose", r.Strategy)
	}
	if _, ok := lookupRule(CPU, ops.ManyToMany, ops.ManyToMany); ok {
		t.Error("red pair produced a codegen rule")
	}
}

func TestEmittedSource(t *testing.T) {
	_, e, plan := buildFig4(t)
	kernels, err := CompilePlan(e, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fused *Kernel
	for _, k := range kernels {
		if k.OpCount > 1 {
			fused = k
		}
	}
	if fused == nil {
		t.Fatal("no fused kernel")
	}
	cpu := fused.SourceCPU
	for _, want := range []string{"void dnnf_kernel_", "for (int", "restrict", "// codegen rules:"} {
		if !strings.Contains(cpu, want) {
			t.Errorf("CPU source missing %q:\n%s", want, cpu)
		}
	}
	gpu := fused.SourceGPU
	for _, want := range []string{"__kernel void", "__global", "get_global_id"} {
		if !strings.Contains(gpu, want) {
			t.Errorf("GPU source missing %q:\n%s", want, gpu)
		}
	}
	// Shared subtree must be hoisted as a temporary in the CPU source.
	if !strings.Contains(cpu, "// shared subtree") {
		t.Errorf("CPU source does not hoist the shared subtree:\n%s", cpu)
	}
	// Braces balance in the CPU source.
	if strings.Count(cpu, "{") != strings.Count(cpu, "}") {
		t.Errorf("unbalanced braces:\n%s", cpu)
	}
}

func TestLayoutSelection(t *testing.T) {
	g := graph.New("layout")
	x := g.AddInput("x", tensor.Of(1, 3, 8, 8))
	w := g.AddWeight("w", tensor.New(8, 3, 3, 3).Rand(1))
	c := g.Apply1(ops.NewConv(ops.ConvAttrs{Pads: []int{1}}), x, w)
	r := g.Apply1(ops.NewRelu(), c)
	g.MarkOutput(r)
	e := ecg.Build(g)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	kernels, err := CompilePlan(e, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kernels {
		if k.OpCount > 1 {
			if k.DominantOp != "Conv" || k.Layout != LayoutNCHW {
				t.Errorf("dominant=%s layout=%s, want Conv/NCHW", k.DominantOp, k.Layout)
			}
		}
	}
}

func TestIndexFoldingStats(t *testing.T) {
	// Transpose interior to a block is folded into index arithmetic.
	g := graph.New("fold")
	x := g.AddInput("x", tensor.Of(4, 6))
	tr := g.Apply1(ops.NewTranspose(1, 0), x)
	r := g.Apply1(ops.NewRelu(), tr)
	g.MarkOutput(r)
	e := ecg.Build(g)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	kernels, err := CompilePlan(e, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	folded := 0
	for _, k := range kernels {
		folded += len(k.DFT.FoldedMovement)
	}
	if folded != 1 {
		t.Errorf("folded movement ops = %d, want 1 (the Transpose)", folded)
	}
}

func TestKernelCostProfile(t *testing.T) {
	_, e, plan := buildFig4(t)
	kernels, err := CompilePlan(e, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kernels {
		if k.ReadBytes <= 0 || k.WriteBytes <= 0 {
			t.Errorf("%s: read/write bytes not computed (%d/%d)", k.Name, k.ReadBytes, k.WriteBytes)
		}
		if k.OpCount > 1 && k.FLOPs <= 0 {
			t.Errorf("%s: FLOPs = %d", k.Name, k.FLOPs)
		}
	}
}

func TestExecuteMissingInputError(t *testing.T) {
	g, e, plan := buildFig4(t)
	kernels, err := CompilePlan(e, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	for _, k := range kernels {
		if _, err := k.Execute(map[*graph.Value]*tensor.Tensor{}); err == nil {
			// Kernels whose inputs are all weights can succeed; others must fail.
			allWeights := true
			for _, in := range k.Inputs {
				if !in.IsConst() {
					allWeights = false
				}
			}
			if !allWeights {
				t.Errorf("%s executed without inputs", k.Name)
			}
		}
	}
}
