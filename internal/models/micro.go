package models

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Micro models: small graphs with real (deterministic) weight data, unlike
// the shape-only Table 5 zoo, so they execute numerically in milliseconds.
// They are the shared substrate of the allocation regression tests and the
// exec section of dnnf-bench -json — one definition, so the number the test
// gates and the number the baseline records come from the same model. They
// are intentionally not part of the Build/Names zoo (which mirrors the
// paper's 15 models).

// microWeight is a deterministic dense weight; seeds are offset per call
// site so differently placed weights differ.
func microWeight(g *graph.Graph, name string, seed uint64, dims ...int) *graph.Value {
	return g.AddWeight(name, tensor.New(dims...).Rand(seed))
}

// MicroCNN is a fused conv pipeline: conv → relu → maxpool → reshape →
// matmul → softmax over a 1×3×8×8 image, input "image", output "probs".
func MicroCNN() *graph.Graph {
	g := graph.New("micro-cnn")
	x := g.AddInput("image", tensor.Of(1, 3, 8, 8))
	w1 := microWeight(g, "w1", 11, 8, 3, 3, 3)
	v := g.Apply1(ops.NewConv(ops.ConvAttrs{Strides: []int{1, 1}, Pads: []int{1, 1}, Dilations: []int{1, 1}, Groups: 1}), x, w1)
	v = g.Apply1(ops.NewRelu(), v)
	v = g.Apply1(ops.NewMaxPool(ops.PoolAttrs{Kernel: []int{2, 2}, Strides: []int{2, 2}, Pads: []int{0, 0}}), v)
	// -1 keeps the reshape batch-polymorphic: at batch 1 it compiles to the
	// same (1, 128) shape as before, and a leading-axis batch variant
	// (CompileBatch) infers (N, 128) instead of failing on a hard-coded
	// row count.
	v = g.Apply1(ops.NewReshape(-1, 8*4*4), v)
	v = g.Apply1(ops.NewMatMul(), v, microWeight(g, "wfc", 12, 8*4*4, 10))
	g.MarkOutputAs("probs", g.Apply1(ops.NewSoftmax(-1), v))
	return g
}

// MicroMLP is a dense two-layer MLP with elementwise epilogues, input "x",
// output "y".
func MicroMLP() *graph.Graph {
	g := graph.New("micro-mlp")
	x := g.AddInput("x", tensor.Of(16, 64))
	v := g.Apply1(ops.NewMatMul(), x, microWeight(g, "w1", 21, 64, 96))
	v = g.Apply1(ops.NewAdd(), v, microWeight(g, "b1", 22, 96))
	v = g.Apply1(ops.NewRelu(), v)
	v = g.Apply1(ops.NewMatMul(), v, microWeight(g, "w2", 23, 96, 32))
	g.MarkOutputAs("y", g.Apply1(ops.NewSoftmax(-1), v))
	return g
}

// MicroAttention is a single attention head (matmul Q/K/V, transposed-key
// scores, softmax, context), input "tokens", output "context".
func MicroAttention() *graph.Graph {
	g := graph.New("micro-attention")
	x := g.AddInput("tokens", tensor.Of(8, 32))
	q := g.Apply1(ops.NewMatMul(), x, microWeight(g, "wq", 31, 32, 32))
	k := g.Apply1(ops.NewMatMul(), x, microWeight(g, "wk", 32, 32, 32))
	v := g.Apply1(ops.NewMatMul(), x, microWeight(g, "wv", 33, 32, 32))
	kt := g.Apply1(ops.NewTranspose(1, 0), k)
	scores := g.Apply1(ops.NewMatMul(), q, kt)
	probs := g.Apply1(ops.NewSoftmax(-1), scores)
	g.MarkOutputAs("context", g.Apply1(ops.NewMatMul(), probs, v))
	return g
}

// MicroElementwise is a deep fused elementwise chain over a 32×32×256
// activation — a scaled residual gate with suffix-broadcast bias/scale —
// the workload where blocked flat loops and intra-kernel parallelism pay
// off purely on dispatch and memory traffic (there is no heavy operator
// to hide behind). Input "x", output "y".
func MicroElementwise() *graph.Graph {
	g := graph.New("micro-elementwise")
	x := g.AddInput("x", tensor.Of(32, 32, 256))
	bias := microWeight(g, "bias", 41, 256)
	scale := microWeight(g, "scale", 42, 256)
	v := g.Apply1(ops.NewAdd(), x, bias)
	v = g.Apply1(ops.NewMul(), v, scale)
	v = g.Apply1(ops.NewSigmoid(), v)
	v = g.Apply1(ops.NewMulConst(2), v)
	v = g.Apply1(ops.NewMul(), v, x)
	v = g.Apply1(ops.NewRelu(), v)
	g.MarkOutputAs("y", v)
	return g
}

// MicroHead is a serving-overhead-sensitive classifier head: one row of
// features through a 64×16 projection, bias, and softmax — a ~1.5µs body,
// so per-request serving costs (dispatch, feed copies, output delivery)
// dominate. It is the regime where dynamic request batching classically
// pays: the micro-batch bench scenario uses it to track that amortization,
// and any future regression in per-request overhead shows up here first.
// Input "features" (1, 64), output "logits" (1, 16).
func MicroHead() *graph.Graph {
	g := graph.New("micro-head")
	x := g.AddInput("features", tensor.Of(1, 64))
	v := g.Apply1(ops.NewMatMul(), x, microWeight(g, "w", 51, 64, 16))
	v = g.Apply1(ops.NewAdd(), v, microWeight(g, "b", 52, 16))
	g.MarkOutputAs("logits", g.Apply1(ops.NewSoftmax(-1), v))
	return g
}

// MicroModels returns the executable micro-model constructors in stable
// report order.
func MicroModels() []struct {
	Name  string
	Build func() *graph.Graph
} {
	return []struct {
		Name  string
		Build func() *graph.Graph
	}{
		{"micro-cnn", MicroCNN},
		{"micro-mlp", MicroMLP},
		{"micro-attention", MicroAttention},
		{"micro-elementwise", MicroElementwise},
		{"micro-head", MicroHead},
	}
}
