package models

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// conv3d adds a 3-D convolution (bias folded in).
func (b *builder) conv3d(x *graph.Value, outCh, kt, k, st, s, pt, p int) *graph.Value {
	inCh := x.Shape[1]
	w := b.w(outCh, inCh, kt, k, k)
	bias := b.w(outCh)
	return b.apply(ops.NewConv(ops.ConvAttrs{
		Strides: []int{st, s, s}, Pads: []int{pt, p, p},
	}), x, w, bias)
}

// conv3dNB is conv3d without bias.
func (b *builder) conv3dNB(x *graph.Value, outCh, kt, k, st, s, pt, p int) *graph.Value {
	inCh := x.Shape[1]
	w := b.w(outCh, inCh, kt, k, k)
	return b.apply(ops.NewConv(ops.ConvAttrs{
		Strides: []int{st, s, s}, Pads: []int{pt, p, p},
	}), x, w)
}

func (b *builder) maxpool3d(x *graph.Value, kt, k int) *graph.Value {
	return b.apply(ops.NewMaxPool(ops.PoolAttrs{
		Kernel:  []int{kt, k, k},
		Strides: []int{kt, k, k},
	}), x)
}

// C3D (16×112×112 clips, UCF-101): 8 3-D convolutions, 5 pools, 2 FC
// layers — 27 layers total as in Table 5. ~77 GFLOPs.
func C3D() *graph.Graph {
	b := newBuilder("C3D")
	x := b.g.AddInput("clip", tensor.Of(1, 3, 16, 112, 112))
	v := b.relu(b.conv3d(x, 64, 3, 3, 1, 1, 1, 1))
	v = b.maxpool3d(v, 1, 2)
	v = b.relu(b.conv3d(v, 128, 3, 3, 1, 1, 1, 1))
	v = b.maxpool3d(v, 2, 2)
	v = b.relu(b.conv3d(v, 256, 3, 3, 1, 1, 1, 1))
	v = b.relu(b.conv3d(v, 256, 3, 3, 1, 1, 1, 1))
	v = b.maxpool3d(v, 2, 2)
	v = b.relu(b.conv3d(v, 512, 3, 3, 1, 1, 1, 1))
	v = b.relu(b.conv3d(v, 512, 3, 3, 1, 1, 1, 1))
	v = b.maxpool3d(v, 2, 2)
	v = b.relu(b.conv3d(v, 512, 3, 3, 1, 1, 1, 1))
	v = b.relu(b.conv3d(v, 512, 3, 3, 1, 1, 1, 1))
	v = b.maxpool3d(v, 1, 2)
	v = b.apply(ops.NewFlatten(1), v)
	v = b.relu(b.linear(v, 4096))
	v = b.relu(b.linear(v, 4096))
	v = b.linear(v, 101)
	v = b.apply(ops.NewSoftmax(-1), v)
	b.g.MarkOutput(v)
	return b.g
}

// sepConv3d is S3D's separable spatio-temporal convolution: a spatial
// 1×k×k conv followed by a temporal k×1×1 conv, each with BN+ReLU, plus the
// feature-gating (sigmoid over pooled features) S3D-G applies.
func (b *builder) sepConv3d(x *graph.Value, outCh, k, s int) *graph.Value {
	v := b.relu(b.bn(b.conv3dNB(x, outCh, 1, k, 1, s, 0, k/2)))
	v = b.relu(b.bn(b.conv3dNB(v, outCh, k, 1, 1, 1, k/2, 0)))
	return v
}

func (b *builder) gate(x *graph.Value) *graph.Value {
	g := b.apply(ops.NewGlobalAveragePool(), x)
	g = b.apply(ops.NewSigmoid(), b.conv3dNB(g, x.Shape[1], 1, 1, 1, 1, 0, 0))
	return b.apply(ops.NewMul(), x, g)
}

// S3D (32×224×224 clips): the separable Inception video network with
// feature gating. ~80 GFLOPs.
func S3D() *graph.Graph {
	b := newBuilder("S3D")
	x := b.g.AddInput("clip", tensor.Of(1, 3, 32, 224, 224))
	v := b.sepConv3d(x, 64, 7, 2)
	v = b.maxpool3d(v, 2, 2)
	v = b.relu(b.bn(b.conv3dNB(v, 64, 1, 1, 1, 1, 0, 0)))
	v = b.sepConv3d(v, 192, 3, 1)
	v = b.maxpool3d(v, 1, 2)

	// Inception blocks: (1x1), (1x1 → sep3x3), (1x1 → sep3x3), (pool → 1x1).
	inception := func(v *graph.Value, c1, c3r, c3, c5r, c5, cp int) *graph.Value {
		b1 := b.relu(b.bn(b.conv3dNB(v, c1, 1, 1, 1, 1, 0, 0)))
		b2 := b.relu(b.bn(b.conv3dNB(v, c3r, 1, 1, 1, 1, 0, 0)))
		b2 = b.sepConv3d(b2, c3, 3, 1)
		b3 := b.relu(b.bn(b.conv3dNB(v, c5r, 1, 1, 1, 1, 0, 0)))
		b3 = b.sepConv3d(b3, c5, 3, 1)
		b4 := b.apply(ops.NewMaxPool(ops.PoolAttrs{Kernel: []int{3}, Strides: []int{1}, Pads: []int{1}}), v)
		b4 = b.relu(b.bn(b.conv3dNB(b4, cp, 1, 1, 1, 1, 0, 0)))
		return b.gate(b.concat(1, b1, b2, b3, b4))
	}

	v = inception(v, 64, 96, 128, 16, 32, 32)
	v = inception(v, 128, 128, 192, 32, 96, 64)
	v = b.maxpool3d(v, 2, 2)
	v = inception(v, 192, 96, 208, 16, 48, 64)
	v = inception(v, 160, 112, 224, 24, 64, 64)
	v = inception(v, 128, 128, 256, 24, 64, 64)
	v = inception(v, 112, 144, 288, 32, 64, 64)
	v = inception(v, 256, 160, 320, 32, 128, 128)
	v = b.maxpool3d(v, 2, 2)
	v = inception(v, 256, 160, 320, 32, 128, 128)
	v = inception(v, 384, 192, 384, 48, 128, 128)

	v = b.apply(ops.NewGlobalAveragePool(), v)
	v = b.apply(ops.NewFlatten(1), v)
	v = b.linear(v, 101)
	v = b.apply(ops.NewSoftmax(-1), v)
	b.g.MarkOutput(v)
	return b.g
}
