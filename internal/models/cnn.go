package models

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// VGG16 is the classic 16-layer CNN (ImageNet, 224×224): 13 convolutions,
// 5 max-pools, 3 fully-connected layers. ~31 GFLOPs, 138M parameters.
func VGG16() *graph.Graph {
	b := newBuilder("VGG-16")
	x := b.g.AddInput("image", tensor.Of(1, 3, 224, 224))
	cfg := []struct {
		convs, ch int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	v := x
	for _, blk := range cfg {
		for i := 0; i < blk.convs; i++ {
			v = b.relu(b.conv2d(v, blk.ch, 3, 1, 1))
		}
		v = b.maxpool2(v)
	}
	v = b.apply(ops.NewFlatten(1), v)
	v = b.relu(b.linear(v, 4096))
	v = b.relu(b.linear(v, 4096))
	v = b.linear(v, 1000)
	v = b.apply(ops.NewSoftmax(-1), v)
	b.g.MarkOutput(v)
	return b.g
}

// EfficientNetB0 (224×224): MBConv blocks with expand/depthwise/SE/project
// stages; Swish decomposed into Sigmoid+Mul as in exports. ~0.8 GFLOPs.
func EfficientNetB0() *graph.Graph {
	b := newBuilder("EfficientNet-B0")
	x := b.g.AddInput("image", tensor.Of(1, 3, 224, 224))
	v := b.swish(b.bn(b.convNB(x, 32, 3, 2, 1))) // stem

	// MBConv(expand ratio, channels, repeats, stride, kernel).
	cfg := []struct {
		expand, ch, repeats, stride, k int
	}{
		{1, 16, 1, 1, 3},
		{6, 24, 2, 2, 3},
		{6, 40, 2, 2, 5},
		{6, 80, 3, 2, 3},
		{6, 112, 3, 1, 5},
		{6, 192, 4, 2, 5},
		{6, 320, 1, 1, 3},
	}
	for _, blk := range cfg {
		for r := 0; r < blk.repeats; r++ {
			stride := blk.stride
			if r > 0 {
				stride = 1
			}
			v = b.mbconv(v, blk.expand, blk.ch, stride, blk.k)
		}
	}
	v = b.swish(b.bn(b.convNB(v, 1280, 1, 1, 0))) // head
	v = b.apply(ops.NewGlobalAveragePool(), v)
	v = b.apply(ops.NewFlatten(1), v)
	v = b.linear(v, 1000)
	v = b.apply(ops.NewSoftmax(-1), v)
	b.g.MarkOutput(v)
	return b.g
}

// mbconv is one EfficientNet inverted-residual block with squeeze-excite.
func (b *builder) mbconv(x *graph.Value, expand, outCh, stride, k int) *graph.Value {
	inCh := x.Shape[1]
	v := x
	if expand != 1 {
		v = b.swish(b.bn(b.convNB(v, inCh*expand, 1, 1, 0)))
	}
	v = b.swish(b.bn(b.dwconv(v, k, stride, k/2)))
	// Squeeze and excite.
	se := b.apply(ops.NewGlobalAveragePool(), v)
	mid := v.Shape[1]
	se = b.swish(b.convNB(se, max(1, inCh/4), 1, 1, 0))
	se = b.apply(ops.NewSigmoid(), b.convNB(se, mid, 1, 1, 0))
	v = b.apply(ops.NewMul(), v, se)
	// Project.
	v = b.bn(b.convNB(v, outCh, 1, 1, 0))
	if stride == 1 && inCh == outCh {
		v = b.apply(ops.NewAdd(), v, x)
	}
	return v
}

// MobileNetV1SSD (300×300): depthwise-separable backbone plus the SSD
// multi-scale detection head with its box-decode chains. ~3 GFLOPs.
func MobileNetV1SSD() *graph.Graph {
	b := newBuilder("MobileNetV1-SSD")
	x := b.g.AddInput("image", tensor.Of(1, 3, 300, 300))
	dwsep := func(v *graph.Value, outCh, stride int) *graph.Value {
		v = b.relu6(b.bn(b.dwconv(v, 3, stride, 1)))
		return b.relu6(b.bn(b.convNB(v, outCh, 1, 1, 0)))
	}
	v := b.relu6(b.bn(b.convNB(x, 32, 3, 2, 1)))
	plan := []struct{ ch, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	var taps []*graph.Value
	for i, p := range plan {
		v = dwsep(v, p.ch, p.stride)
		if i == 10 || i == 12 {
			taps = append(taps, v)
		}
	}
	// SSD extra feature layers.
	for _, ch := range []int{512, 256, 256, 128} {
		v = b.relu6(b.bn(b.convNB(v, ch/2, 1, 1, 0)))
		v = b.relu6(b.bn(b.convNB(v, ch, 3, 2, 1)))
		taps = append(taps, v)
	}
	// Per-scale heads: location + confidence, then decode chains.
	var locs, confs []*graph.Value
	for _, t := range taps {
		anchors := 6
		loc := b.conv2d(t, anchors*4, 3, 1, 1)
		loc = b.apply(ops.NewFlatten(1), loc)
		locs = append(locs, loc)
		conf := b.conv2d(t, anchors*21, 3, 1, 1)
		conf = b.apply(ops.NewFlatten(1), conf)
		confs = append(confs, conf)
	}
	loc := b.concat(1, locs...)
	conf := b.concat(1, confs...)
	nBox := loc.Shape[1] / 4
	loc = b.apply(ops.NewReshape(1, nBox, 4), loc)
	conf = b.apply(ops.NewReshape(1, nBox, 21), conf)
	conf = b.apply(ops.NewSoftmax(-1), conf)
	// Box decode: centers and sizes against anchors.
	xy := b.apply(ops.NewSlice([]int{2}, []int{0}, []int{2}), loc)
	wh := b.apply(ops.NewSlice([]int{2}, []int{2}, []int{4}), loc)
	xy = b.apply(ops.NewMul(), xy, b.w(1, nBox, 2))
	xy = b.apply(ops.NewAdd(), xy, b.w(1, nBox, 2))
	wh = b.apply(ops.NewExp(), wh)
	wh = b.apply(ops.NewMul(), wh, b.w(1, nBox, 2))
	boxes := b.concat(2, xy, wh)
	b.g.MarkOutput(boxes, conf)
	return b.g
}

// YOLOV4 (416×416): CSPDarknet-53 backbone (Mish activations decomposed),
// SPP, PANet neck with upsampling/concatenation, and three detection heads.
// ~35 GFLOPs.
func YOLOV4() *graph.Graph {
	b := newBuilder("YOLO-V4")
	x := b.g.AddInput("image", tensor.Of(1, 3, 416, 416))

	convMish := func(v *graph.Value, ch, k, s int) *graph.Value {
		return b.mish(b.bn(b.convNB(v, ch, k, s, k/2)))
	}
	convLeaky := func(v *graph.Value, ch, k, s int) *graph.Value {
		return b.leaky(b.bn(b.convNB(v, ch, k, s, k/2)))
	}

	// CSP block: split via 1x1 convs, residual stack, merge.
	csp := func(v *graph.Value, ch, blocks int) *graph.Value {
		v = convMish(v, ch, 3, 2) // downsample
		route := convMish(v, ch/2, 1, 1)
		main := convMish(v, ch/2, 1, 1)
		for i := 0; i < blocks; i++ {
			r := convMish(main, ch/2, 1, 1)
			r = convMish(r, ch/2, 3, 1)
			main = b.apply(ops.NewAdd(), main, r)
		}
		main = convMish(main, ch/2, 1, 1)
		v = b.concat(1, main, route)
		return convMish(v, ch, 1, 1)
	}

	v := convMish(x, 32, 3, 1)
	v = csp(v, 64, 1)
	v = csp(v, 128, 2)
	c3 := csp(v, 256, 8)
	c4 := csp(c3, 512, 8)
	c5 := csp(c4, 1024, 4)

	// SPP.
	p := convLeaky(convLeaky(convLeaky(c5, 512, 1, 1), 1024, 3, 1), 512, 1, 1)
	pool := func(v *graph.Value, k int) *graph.Value {
		return b.apply(ops.NewMaxPool(ops.PoolAttrs{Kernel: []int{k}, Strides: []int{1}, Pads: []int{k / 2}}), v)
	}
	spp := b.concat(1, pool(p, 5), pool(p, 9), pool(p, 13), p)
	p5 := convLeaky(convLeaky(convLeaky(spp, 512, 1, 1), 1024, 3, 1), 512, 1, 1)

	// PANet top-down.
	up := func(v *graph.Value) *graph.Value { return b.apply(ops.NewUpsample(2), v) }
	fuse := func(big, lateral *graph.Value, ch int) *graph.Value {
		l := convLeaky(lateral, ch, 1, 1)
		m := b.concat(1, l, up(convLeaky(big, ch, 1, 1)))
		for i := 0; i < 2; i++ {
			m = convLeaky(m, ch, 1, 1)
			m = convLeaky(m, ch*2, 3, 1)
		}
		return convLeaky(m, ch, 1, 1)
	}
	p4 := fuse(p5, c4, 256)
	p3 := fuse(p4, c3, 128)

	// Bottom-up + heads (3 scales × (conv3x3 + conv1x1 head)).
	head := func(v *graph.Value, ch int) *graph.Value {
		h := convLeaky(v, ch*2, 3, 1)
		return b.conv2d(h, 255, 1, 1, 0)
	}
	o3 := head(p3, 128)
	d4 := b.concat(1, convLeaky(p3, 256, 3, 2), p4)
	d4 = convLeaky(convLeaky(d4, 256, 1, 1), 512, 3, 1)
	o4 := head(d4, 256)
	d5 := b.concat(1, convLeaky(d4, 512, 3, 2), p5)
	d5 = convLeaky(convLeaky(d5, 512, 1, 1), 1024, 3, 1)
	o5 := head(d5, 512)
	b.g.MarkOutput(o3, o4, o5)
	return b.g
}

// UNet (256×256): the encoder/decoder segmentation CNN with skip
// connections, transposed-convolution upsampling, and per-conv
// normalization. ~15 GFLOPs at this resolution.
func UNet() *graph.Graph {
	b := newBuilder("U-Net")
	x := b.g.AddInput("image", tensor.Of(1, 3, 256, 256))
	block := func(v *graph.Value, ch int) *graph.Value {
		v = b.relu(b.bn(b.convNB(v, ch, 3, 1, 1)))
		v = b.relu(b.bn(b.convNB(v, ch, 3, 1, 1)))
		return v
	}
	var skips []*graph.Value
	v := x
	for _, ch := range []int{32, 64, 128, 256} {
		v = block(v, ch)
		skips = append(skips, v)
		v = b.maxpool2(v)
	}
	v = block(v, 512)
	for i := len(skips) - 1; i >= 0; i-- {
		ch := skips[i].Shape[1]
		w := b.w(v.Shape[1], ch, 2, 2)
		v = b.apply(ops.NewConvTranspose(ops.ConvAttrs{Strides: []int{2}}), v, w)
		v = b.concat(1, skips[i], v)
		v = block(v, ch)
	}
	v = b.conv2d(v, 2, 1, 1, 0)
	v = b.apply(ops.NewSoftmax(1), v)
	b.g.MarkOutput(v)
	return b.g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
