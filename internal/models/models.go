// Package models builds the 15 DNN computational graphs of the paper's
// evaluation (Table 5): four task families of 2-D CNNs, two 3-D CNNs, two
// R-CNNs, and six transformers. Graphs are structurally faithful — the same
// operator decompositions a mobile ONNX export contains, including the
// LayerNorm/GELU/Swish/Mish expansions and the export redundancy (cast /
// identity / cancelling transpose and reshape pairs) that give graph
// rewriting its real-world opportunities — but carry shape-only weights:
// the evaluation simulates inference, it never needs the gigabytes of
// parameter data.
package models

import (
	"fmt"
	"sort"

	"dnnfusion/internal/graph"
)

// Spec describes one evaluation model.
type Spec struct {
	Name  string
	Type  string // "2D CNN", "3D CNN", "R-CNN", "Transformer"
	Task  string
	Build func() *graph.Graph
}

// All returns the 15 models in Table 5 order.
func All() []Spec {
	return []Spec{
		{"EfficientNet-B0", "2D CNN", "Image classification", EfficientNetB0},
		{"VGG-16", "2D CNN", "Image classification", VGG16},
		{"MobileNetV1-SSD", "2D CNN", "Object detection", MobileNetV1SSD},
		{"YOLO-V4", "2D CNN", "Object detection", YOLOV4},
		{"C3D", "3D CNN", "Action recognition", C3D},
		{"S3D", "3D CNN", "Action recognition", S3D},
		{"U-Net", "2D CNN", "Image segmentation", UNet},
		{"Faster R-CNN", "R-CNN", "Image segmentation", FasterRCNN},
		{"Mask R-CNN", "R-CNN", "Image segmentation", MaskRCNN},
		{"TinyBERT", "Transformer", "NLP", TinyBERT},
		{"DistilBERT", "Transformer", "NLP", DistilBERT},
		{"ALBERT", "Transformer", "NLP", ALBERT},
		{"BERT-base", "Transformer", "NLP", BERTBase},
		{"MobileBERT", "Transformer", "NLP", MobileBERT},
		{"GPT-2", "Transformer", "NLP", GPT2},
	}
}

// Build constructs a model by name.
func Build(name string) (*graph.Graph, error) {
	for _, s := range All() {
		if s.Name == name {
			return s.Build(), nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
}

// Names lists the model names in evaluation order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the spec for a name.
func Lookup(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// sortedNames is used by tests for deterministic iteration.
func sortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
