package models

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// The two-stage detectors. Their defining property for this paper is the
// enormous memory-intensive layer count: anchor decoding, proposal
// selection, and per-proposal ROI processing are exported as thousands of
// small data-movement and elementwise operators around a modest number of
// convolutions — exactly the graphs no fixed-pattern fuser handles and no
// baseline framework can run on mobile (the '-' rows of Tables 5 and 6).

const (
	rcnnProposalGroups = 200 // unrolled per-proposal processing chains
	rcnnClasses        = 21
)

// resnet50FPN builds the shared backbone + feature pyramid, returning the
// pyramid levels.
func (b *builder) resnet50FPN(x *graph.Value) []*graph.Value {
	convBNRelu := func(v *graph.Value, ch, k, s int) *graph.Value {
		return b.relu(b.bn(b.convNB(v, ch, k, s, k/2)))
	}
	bottleneck := func(v *graph.Value, mid, out, stride int) *graph.Value {
		id := v
		r := convBNRelu(v, mid, 1, 1)
		r = convBNRelu(r, mid, 3, stride)
		r = b.bn(b.convNB(r, out, 1, 1, 0))
		if v.Shape[1] != out || stride != 1 {
			id = b.bn(b.convNB(v, out, 1, stride, 0))
		}
		return b.relu(b.apply(ops.NewAdd(), r, id))
	}
	v := convBNRelu(x, 64, 7, 2)
	v = b.maxpool2(v)
	stage := func(v *graph.Value, mid, out, blocks, stride int) *graph.Value {
		v = bottleneck(v, mid, out, stride)
		for i := 1; i < blocks; i++ {
			v = bottleneck(v, mid, out, 1)
		}
		return v
	}
	c2 := stage(v, 64, 256, 3, 1)
	c3 := stage(c2, 128, 512, 4, 2)
	c4 := stage(c3, 256, 1024, 6, 2)
	c5 := stage(c4, 512, 2048, 3, 2)

	// FPN: lateral 1x1 + top-down upsample-add + output 3x3.
	lat := func(v *graph.Value) *graph.Value { return b.convNB(v, 256, 1, 1, 0) }
	p5 := lat(c5)
	p4 := b.apply(ops.NewAdd(), lat(c4), b.apply(ops.NewUpsample(2), p5))
	p3 := b.apply(ops.NewAdd(), lat(c3), b.apply(ops.NewUpsample(2), p4))
	p2 := b.apply(ops.NewAdd(), lat(c2), b.apply(ops.NewUpsample(2), p3))
	outConv := func(v *graph.Value) *graph.Value { return b.convNB(v, 256, 3, 1, 1) }
	return []*graph.Value{outConv(p2), outConv(p3), outConv(p4), outConv(p5)}
}

// rpnAndDecode runs the region proposal head on each pyramid level and
// unrolls the anchor box decoding chains.
func (b *builder) rpnAndDecode(levels []*graph.Value) {
	for _, p := range levels {
		h := b.relu(b.convNB(p, 256, 3, 1, 1))
		logits := b.conv2d(h, 3, 1, 1, 0)   // 3 anchors
		deltas := b.conv2d(h, 3*4, 1, 1, 0) //
		score := b.apply(ops.NewSigmoid(), b.apply(ops.NewFlatten(1), logits))
		d := b.apply(ops.NewFlatten(1), deltas)
		n := d.Shape[1] / 4
		d = b.apply(ops.NewReshape(1, n, 4), d)
		xy := b.apply(ops.NewSlice([]int{2}, []int{0}, []int{2}), d)
		wh := b.apply(ops.NewSlice([]int{2}, []int{2}, []int{4}), d)
		xy = b.apply(ops.NewMul(), xy, b.w(1, n, 2))
		xy = b.apply(ops.NewAdd(), xy, b.w(1, n, 2))
		wh = b.apply(ops.NewExp(), wh)
		wh = b.apply(ops.NewMul(), wh, b.w(1, n, 2))
		boxes := b.concat(2, xy, wh)
		boxes = b.apply(ops.NewClip(0, 640), boxes)
		_ = score
		b.g.MarkOutput(boxes, score)
	}
}

// roiChains unrolls per-proposal-group ROI feature extraction over the
// finest pyramid level: gather 7×7 locations, normalize, and stack. Each
// group is ~14 small memory-bound operators — the layer-count explosion of
// Table 5.
func (b *builder) roiChains(level *graph.Value, groups int) *graph.Value {
	c := level.Shape[1]
	flat := b.apply(ops.NewReshape(c, -1), level)
	var feats []*graph.Value
	for i := 0; i < groups; i++ {
		idx := b.w(49)                            // 7*7 sampling locations for this proposal
		f := b.apply(ops.NewGather(1), flat, idx) // [c, 49]
		f = b.apply(ops.NewReshape(1, c, 7, 7), f)
		// Bilinear-style mixing of the gathered samples.
		s1 := b.apply(ops.NewSlice([]int{3}, []int{0}, []int{6}), f)
		s2 := b.apply(ops.NewSlice([]int{3}, []int{1}, []int{7}), f)
		m1 := b.apply(ops.NewMulConst(0.5), s1)
		m2 := b.apply(ops.NewMulConst(0.5), s2)
		mix := b.apply(ops.NewAdd(), m1, m2)
		f = b.concat(3, mix, b.apply(ops.NewSlice([]int{3}, []int{6}, []int{7}), f))
		// Normalize the group's features.
		sc := b.apply(ops.NewMul(), f, b.w(1, c, 1, 1))
		sc = b.apply(ops.NewAdd(), sc, b.w(1, c, 1, 1))
		feats = append(feats, sc)
	}
	return b.concat(0, feats...)
}

// detectionHead runs the shared FC head and per-class box decode.
func (b *builder) detectionHead(roi *graph.Value) (*graph.Value, *graph.Value) {
	v := b.apply(ops.NewFlatten(1), roi)
	v = b.relu(b.linear(v, 1024))
	v = b.relu(b.linear(v, 1024))
	cls := b.apply(ops.NewSoftmax(-1), b.linear(v, rcnnClasses))
	box := b.linear(v, rcnnClasses*4)
	box = b.apply(ops.NewReshape(-1, rcnnClasses, 4), box)
	xy := b.apply(ops.NewSlice([]int{2}, []int{0}, []int{2}), box)
	wh := b.apply(ops.NewSlice([]int{2}, []int{2}, []int{4}), box)
	wh = b.apply(ops.NewExp(), wh)
	boxes := b.concat(2, xy, wh)
	boxes = b.apply(ops.NewClip(0, 640), boxes)
	return cls, boxes
}

// FasterRCNN (480×640 input): ResNet-50-FPN backbone, RPN with unrolled
// anchor decoding, 150 unrolled ROI chains, and the detection head.
// ~47 GFLOPs, thousands of memory-intensive layers.
func FasterRCNN() *graph.Graph {
	b := newBuilder("Faster R-CNN")
	x := b.g.AddInput("image", tensor.Of(1, 3, 480, 640))
	levels := b.resnet50FPN(x)
	b.rpnAndDecode(levels)
	roi := b.roiChains(levels[0], rcnnProposalGroups)
	cls, boxes := b.detectionHead(roi)
	b.g.MarkOutput(cls, boxes)
	return b.g
}

// MaskRCNN adds the mask branch: four convolutions, a transposed
// convolution, the per-class mask sigmoid, and per-proposal mask
// post-processing chains. ~184 GFLOPs.
func MaskRCNN() *graph.Graph {
	b := newBuilder("Mask R-CNN")
	x := b.g.AddInput("image", tensor.Of(1, 3, 480, 640))
	levels := b.resnet50FPN(x)
	b.rpnAndDecode(levels)
	roi := b.roiChains(levels[0], rcnnProposalGroups)
	cls, boxes := b.detectionHead(roi)

	// Mask head over the pooled features.
	m := roi
	for i := 0; i < 4; i++ {
		m = b.relu(b.convNB(m, 256, 3, 1, 1))
	}
	w := b.w(256, 256, 2, 2)
	m = b.relu(b.apply(ops.NewConvTranspose(ops.ConvAttrs{Strides: []int{2}}), m, w))
	m = b.apply(ops.NewSigmoid(), b.conv2d(m, rcnnClasses, 1, 1, 0))
	// Per-proposal mask selection chains.
	var masks []*graph.Value
	for i := 0; i < rcnnProposalGroups; i++ {
		s := b.apply(ops.NewSlice([]int{0}, []int{i}, []int{i + 1}), m)
		s = b.apply(ops.NewMulConst(1), s) // score weighting placeholder
		masks = append(masks, s)
	}
	mm := b.concat(0, masks...)
	b.g.MarkOutput(cls, boxes, mm)
	return b.g
}
