package models

import (
	"testing"

	"dnnfusion/internal/ecg"
)

// expectations holds the sanity ranges for each model's structure, anchored
// to Table 5/6 magnitudes (see EXPERIMENTS.md for the measured values).
var expectations = map[string]struct {
	minLayers, maxLayers int
	minCIL, maxCIL       int
	minGFLOPs, maxGFLOPs float64
}{
	"EfficientNet-B0": {250, 420, 60, 100, 0.3, 2},
	"VGG-16":          {40, 70, 14, 20, 20, 45},
	"MobileNetV1-SSD": {140, 280, 25, 60, 1, 8},
	"YOLO-V4":         {300, 520, 90, 130, 20, 60},
	"C3D":             {25, 32, 10, 12, 50, 110},
	"S3D":             {220, 360, 60, 95, 30, 160},
	"U-Net":           {60, 160, 20, 40, 8, 80},
	"Faster R-CNN":    {2200, 4200, 60, 220, 40, 150},
	"Mask R-CNN":      {2400, 4600, 65, 240, 50, 300},
	"TinyBERT":        {280, 460, 28, 45, 1, 8},
	"DistilBERT":      {380, 560, 40, 70, 20, 55},
	"ALBERT":          {780, 1100, 80, 120, 40, 100},
	"BERT-base":       {820, 1150, 85, 130, 40, 100},
	"MobileBERT":      {1900, 2900, 330, 520, 5, 40},
	"GPT-2":           {1300, 2700, 60, 110, 30, 110},
}

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build()
			if err := g.Validate(); err != nil {
				t.Fatalf("%s invalid: %v", spec.Name, err)
			}
			if len(g.Outputs) == 0 {
				t.Fatalf("%s has no outputs", spec.Name)
			}
			e := ecg.Build(g)
			s := e.ComputeStats()
			exp, ok := expectations[spec.Name]
			if !ok {
				t.Fatalf("no expectations for %s", spec.Name)
			}
			if s.Total < exp.minLayers || s.Total > exp.maxLayers {
				t.Errorf("%s layers = %d, want [%d, %d]", spec.Name, s.Total, exp.minLayers, exp.maxLayers)
			}
			if s.CIL < exp.minCIL || s.CIL > exp.maxCIL {
				t.Errorf("%s CIL = %d, want [%d, %d]", spec.Name, s.CIL, exp.minCIL, exp.maxCIL)
			}
			gflops := float64(s.FLOPs) / 1e9
			if gflops < exp.minGFLOPs || gflops > exp.maxGFLOPs {
				t.Errorf("%s GFLOPs = %.2f, want [%.1f, %.1f]", spec.Name, gflops, exp.minGFLOPs, exp.maxGFLOPs)
			}
			if s.MIL <= s.CIL && spec.Type != "3D CNN" && spec.Name != "VGG-16" {
				t.Errorf("%s should be MIL-dominated: CIL=%d MIL=%d", spec.Name, s.CIL, s.MIL)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) != 15 {
		t.Fatalf("model count = %d, want 15", len(All()))
	}
	if _, err := Build("VGG-16"); err != nil {
		t.Errorf("Build(VGG-16): %v", err)
	}
	if _, err := Build("nope"); err == nil {
		t.Error("Build of unknown model should fail")
	}
	if _, ok := Lookup("GPT-2"); !ok {
		t.Error("Lookup(GPT-2) failed")
	}
	if len(sortedNames()) != 15 {
		t.Error("sortedNames wrong length")
	}
}

func TestDeepModelsAreDeeper(t *testing.T) {
	// The paper's premise (Table 1): newer models trade width for depth.
	layers := func(name string) int {
		g, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		return len(g.Nodes)
	}
	vgg := layers("VGG-16")
	distil := layers("DistilBERT")
	mobile := layers("MobileBERT")
	gpt := layers("GPT-2")
	if !(vgg < distil && distil < mobile) {
		t.Errorf("depth ordering broken: VGG %d, DistilBERT %d, MobileBERT %d", vgg, distil, mobile)
	}
	if gpt < mobile/2 {
		t.Errorf("GPT-2 (%d) should be among the deepest (MobileBERT %d)", gpt, mobile)
	}
}

func TestALBERTSharesWeights(t *testing.T) {
	albert := ALBERT()
	bert := BERTBase()
	albertWeights, bertWeights := 0, 0
	for _, v := range albert.Values {
		if v.Kind.String() == "weight" {
			albertWeights++
		}
	}
	for _, v := range bert.Values {
		if v.Kind.String() == "weight" {
			bertWeights++
		}
	}
	if albertWeights >= bertWeights/2 {
		t.Errorf("ALBERT weight count %d should be well below BERT's %d (parameter sharing)",
			albertWeights, bertWeights)
	}
}

func TestTransformersContainPaperPatterns(t *testing.T) {
	// The TinyBERT pattern the paper cites: Sub + Pow + ReduceMean + Add +
	// Sqrt (decomposed LayerNorm) must be present.
	g := TinyBERT()
	counts := map[string]int{}
	for _, n := range g.Nodes {
		counts[n.Op.Type()]++
	}
	for _, op := range []string{"Sub", "Pow", "ReduceMean", "Sqrt", "Softmax", "Erf", "Gather"} {
		if counts[op] == 0 {
			t.Errorf("TinyBERT missing %s (paper's decomposition)", op)
		}
	}
	// GPT-2's MatMul + Reshape + Transpose + Add pattern.
	g2 := GPT2()
	c2 := map[string]int{}
	for _, n := range g2.Nodes {
		c2[n.Op.Type()]++
	}
	for _, op := range []string{"MatMul", "Reshape", "Transpose", "Add", "Split", "Tanh"} {
		if c2[op] == 0 {
			t.Errorf("GPT-2 missing %s", op)
		}
	}
}
