package models

import (
	"fmt"

	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// builder wraps a graph with weight-naming and layer helpers shared by the
// model constructors.
type builder struct {
	g  *graph.Graph
	nw int
}

func newBuilder(name string) *builder {
	return &builder{g: graph.New(name)}
}

// w declares a shape-only weight.
func (b *builder) w(dims ...int) *graph.Value {
	b.nw++
	return b.g.AddWeightShape(fmt.Sprintf("w%d", b.nw), tensor.Of(dims...))
}

func (b *builder) apply(op ops.Operator, ins ...*graph.Value) *graph.Value {
	return b.g.Apply1(op, ins...)
}

// conv2d adds a Conv with bias folded into the operator inputs.
func (b *builder) conv2d(x *graph.Value, outCh, k, stride, pad int) *graph.Value {
	inCh := x.Shape[1]
	w := b.w(outCh, inCh, k, k)
	bias := b.w(outCh)
	return b.apply(ops.NewConv(ops.ConvAttrs{Strides: []int{stride}, Pads: []int{pad}}), x, w, bias)
}

// convNB is conv2d without bias (BN supplies the shift).
func (b *builder) convNB(x *graph.Value, outCh, k, stride, pad int) *graph.Value {
	inCh := x.Shape[1]
	w := b.w(outCh, inCh, k, k)
	return b.apply(ops.NewConv(ops.ConvAttrs{Strides: []int{stride}, Pads: []int{pad}}), x, w)
}

// dwconv is a depthwise conv (groups == channels), no bias.
func (b *builder) dwconv(x *graph.Value, k, stride, pad int) *graph.Value {
	ch := x.Shape[1]
	w := b.w(ch, 1, k, k)
	return b.apply(ops.NewConv(ops.ConvAttrs{Strides: []int{stride}, Pads: []int{pad}, Groups: ch}), x, w)
}

// bn adds inference-mode batch normalization over the channel dim.
func (b *builder) bn(x *graph.Value) *graph.Value {
	c := x.Shape[1]
	return b.apply(ops.NewBatchNormalization(1e-5), x, b.w(c), b.w(c), b.w(c), b.w(c))
}

func (b *builder) relu(x *graph.Value) *graph.Value  { return b.apply(ops.NewRelu(), x) }
func (b *builder) relu6(x *graph.Value) *graph.Value { return b.apply(ops.NewClip(0, 6), x) }
func (b *builder) leaky(x *graph.Value) *graph.Value { return b.apply(ops.NewLeakyRelu(0.1), x) }

// swish decomposes x*sigmoid(x) as exports do (2 ops).
func (b *builder) swish(x *graph.Value) *graph.Value {
	return b.apply(ops.NewMul(), x, b.apply(ops.NewSigmoid(), x))
}

// mish decomposes x*tanh(softplus(x)) (3 ops).
func (b *builder) mish(x *graph.Value) *graph.Value {
	sp := b.apply(ops.NewSoftplus(), x)
	return b.apply(ops.NewMul(), x, b.apply(ops.NewTanh(), sp))
}

// geluErf decomposes 0.5x(1+erf(x/√2)) (5 ops, BERT exports).
func (b *builder) geluErf(x *graph.Value) *graph.Value {
	v := b.apply(ops.NewMulConst(0.7071068), x)
	v = b.apply(ops.NewErf(), v)
	v = b.apply(ops.NewAddConst(1), v)
	v = b.apply(ops.NewMul(), x, v)
	return b.apply(ops.NewMulConst(0.5), v)
}

// geluTanh decomposes the tanh approximation (8 ops, GPT-2 exports).
func (b *builder) geluTanh(x *graph.Value) *graph.Value {
	x3 := b.apply(ops.NewPowConst(3), x)
	v := b.apply(ops.NewMulConst(0.044715), x3)
	v = b.apply(ops.NewAdd(), x, v)
	v = b.apply(ops.NewMulConst(0.7978846), v)
	v = b.apply(ops.NewTanh(), v)
	v = b.apply(ops.NewAddConst(1), v)
	v = b.apply(ops.NewMul(), x, v)
	return b.apply(ops.NewMulConst(0.5), v)
}

// layerNorm emits the decomposed LayerNormalization the paper cites for
// TinyBERT (Sub + Pow + ReduceMean + Add + Sqrt + Div + Mul + Add): 9 ops.
func (b *builder) layerNorm(x *graph.Value) *graph.Value {
	lastAxis := x.Shape.Rank() - 1
	h := x.Shape[lastAxis]
	mean := b.apply(ops.NewReduce(ops.ReduceMean, true, lastAxis), x)
	centered := b.apply(ops.NewSub(), x, mean)
	sq := b.apply(ops.NewPowConst(2), centered)
	variance := b.apply(ops.NewReduce(ops.ReduceMean, true, lastAxis), sq)
	veps := b.apply(ops.NewAddConst(1e-5), variance)
	std := b.apply(ops.NewSqrt(), veps)
	norm := b.apply(ops.NewDiv(), centered, std)
	scaled := b.apply(ops.NewMul(), norm, b.w(h))
	return b.apply(ops.NewAdd(), scaled, b.w(h))
}

// noNorm is MobileBERT's normalization-free replacement: Mul + Add.
func (b *builder) noNorm(x *graph.Value) *graph.Value {
	h := x.Shape[x.Shape.Rank()-1]
	return b.apply(ops.NewAdd(), b.apply(ops.NewMul(), x, b.w(h)), b.w(h))
}

// linear is MatMul + bias Add over the last dimension.
func (b *builder) linear(x *graph.Value, out int) *graph.Value {
	in := x.Shape[x.Shape.Rank()-1]
	v := b.apply(ops.NewMatMul(), x, b.w(in, out))
	return b.apply(ops.NewAdd(), v, b.w(out))
}

func (b *builder) maxpool2(x *graph.Value) *graph.Value {
	return b.apply(ops.NewMaxPool(ops.PoolAttrs{Kernel: []int{2}, Strides: []int{2}}), x)
}

func (b *builder) concat(axis int, xs ...*graph.Value) *graph.Value {
	return b.apply(ops.NewConcat(axis), xs...)
}

// exportCruft models the redundancy real exporters leave behind: Cast and
// Identity chains plus cancelling Transpose and Reshape pairs. Graph
// rewriting (§4.2) eliminates it, which is where the paper's "18% fewer
// fused layers after rewriting on GPT-2" comes from.
func (b *builder) exportCruft(x *graph.Value, casts, identities, transposePairs, reshapePairs int) *graph.Value {
	v := x
	for i := 0; i < casts; i++ {
		v = b.apply(ops.NewCast(), v)
	}
	for i := 0; i < identities; i++ {
		v = b.apply(ops.NewIdentity(), v)
	}
	if v.Shape.Rank() >= 2 {
		perm := make([]int, v.Shape.Rank())
		for i := range perm {
			perm[i] = i
		}
		// Swap the last two dims and back.
		n := len(perm)
		swapped := append([]int(nil), perm...)
		swapped[n-1], swapped[n-2] = perm[n-2], perm[n-1]
		for i := 0; i < transposePairs; i++ {
			v = b.apply(ops.NewTranspose(swapped...), v)
			v = b.apply(ops.NewTranspose(swapped...), v)
		}
	}
	for i := 0; i < reshapePairs; i++ {
		flat := v.Shape.NumElements()
		orig := v.Shape.Clone()
		v = b.apply(ops.NewReshape(flat), v)
		v = b.apply(ops.NewReshape(orig...), v)
	}
	return v
}
