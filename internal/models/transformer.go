package models

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// tfConfig parameterizes the transformer family. All six NLP models share
// the same decomposed export structure (the LayerNorm and GELU expansions
// the paper cites, the attention reshape/transpose ribbon, and per-block
// export cruft) and differ in depth, width, normalization, and head/FFN
// arrangement.
type tfConfig struct {
	name   string
	blocks int
	hidden int
	heads  int
	seq    int
	ffn    int

	geluTanh  bool // GPT-2's tanh approximation vs the erf form
	noNorm    bool // MobileBERT's NoNorm (Mul+Add) instead of LayerNorm
	causal    bool // GPT-2's causal mask chain
	mergedQKV bool // GPT-2's single QKV projection + Split

	bottleneck int // MobileBERT: intra-block bottleneck width (0 = off)
	ffnStacks  int // MobileBERT: stacked FFNs per block (default 1)

	shareBlockWeights bool // ALBERT: one parameter set reused by all blocks
	embedFactor       int  // ALBERT: factorized embedding width (0 = hidden)
	tokenTypes        bool // BERT-family segment embeddings

	// Export cruft per block (casts, identities, transpose pairs,
	// reshape pairs) — see builder.exportCruft.
	casts, ids, tPairs, rPairs int
}

// sharedWeights caches ALBERT's reused parameters by shape.
type sharedWeights struct {
	b     *builder
	cache map[string]*graph.Value
	on    bool
}

func (s *sharedWeights) get(dims ...int) *graph.Value {
	if !s.on {
		return s.b.w(dims...)
	}
	key := tensor.Of(dims...).String()
	if v, ok := s.cache[key]; ok {
		return v
	}
	v := s.b.w(dims...)
	s.cache[key] = v
	return v
}

func buildTransformer(cfg tfConfig) *graph.Graph {
	b := newBuilder(cfg.name)
	sw := &sharedWeights{b: b, cache: map[string]*graph.Value{}, on: cfg.shareBlockWeights}

	norm := func(x *graph.Value) *graph.Value {
		if cfg.noNorm {
			return b.noNorm(x)
		}
		return b.layerNorm(x)
	}
	gelu := func(x *graph.Value) *graph.Value {
		if cfg.geluTanh {
			return b.geluTanh(x)
		}
		return b.geluErf(x)
	}
	linearShared := func(x *graph.Value, out int) *graph.Value {
		in := x.Shape[x.Shape.Rank()-1]
		v := b.apply(ops.NewMatMul(), x, sw.get(in, out))
		return b.apply(ops.NewAdd(), v, sw.get(out))
	}

	// Embeddings: token (+ position, + segment) gathers, sum, norm.
	ids := b.g.AddInput("input_ids", tensor.Of(cfg.seq))
	embedW := cfg.hidden
	if cfg.embedFactor > 0 {
		embedW = cfg.embedFactor
	}
	tok := b.apply(ops.NewGather(0), b.w(30522, embedW), ids)
	pos := b.apply(ops.NewGather(0), b.w(512, embedW), b.w(cfg.seq))
	v := b.apply(ops.NewAdd(), tok, pos)
	if cfg.tokenTypes {
		seg := b.apply(ops.NewGather(0), b.w(2, embedW), b.w(cfg.seq))
		v = b.apply(ops.NewAdd(), v, seg)
	}
	if cfg.embedFactor > 0 {
		v = linearShared(v, cfg.hidden) // ALBERT factorized projection
	}
	v = b.layerNorm(v)

	dh := cfg.hidden / cfg.heads
	attention := func(x *graph.Value, width int) *graph.Value {
		heads := cfg.heads
		var q, k, val *graph.Value
		if cfg.mergedQKV {
			qkv := linearShared(x, 3*width)
			parts, err := b.g.Apply(ops.NewSplit(1, width, width, width), qkv)
			if err != nil {
				panic(err)
			}
			q, k, val = parts[0], parts[1], parts[2]
		} else {
			q = linearShared(x, width)
			k = linearShared(x, width)
			val = linearShared(x, width)
		}
		dhw := width / heads
		shape := func(t *graph.Value) *graph.Value {
			t = b.apply(ops.NewReshape(cfg.seq, heads, dhw), t)
			return b.apply(ops.NewTranspose(1, 0, 2), t)
		}
		q, k, val = shape(q), shape(k), shape(val)
		kt := b.apply(ops.NewTranspose(0, 2, 1), k)
		scores := b.apply(ops.NewMatMul(), q, kt) // [heads, seq, seq]
		scores = b.apply(ops.NewMulConst(1.0/float32(intSqrt(dhw))), scores)
		if cfg.causal {
			// Causal mask chain as exports decompose it.
			mask := b.w(1, cfg.seq, cfg.seq)
			inv := b.apply(ops.NewSub(), b.w(1, cfg.seq, cfg.seq), mask)
			neg := b.apply(ops.NewMulConst(-1e4), inv)
			masked := b.apply(ops.NewMul(), scores, mask)
			scores = b.apply(ops.NewAdd(), masked, neg)
		} else {
			scores = b.apply(ops.NewAdd(), scores, b.w(1, cfg.seq, cfg.seq))
		}
		att := b.apply(ops.NewSoftmax(-1), scores)
		ctx := b.apply(ops.NewMatMul(), att, val) // [heads, seq, dhw]
		ctx = b.apply(ops.NewTranspose(1, 0, 2), ctx)
		ctx = b.apply(ops.NewReshape(cfg.seq, width), ctx)
		return linearShared(ctx, width)
	}
	_ = dh

	for blk := 0; blk < cfg.blocks; blk++ {
		x := v
		width := cfg.hidden
		if cfg.bottleneck > 0 {
			// MobileBERT: project into the bottleneck.
			x = norm(linearShared(x, cfg.bottleneck))
			width = cfg.bottleneck
		}
		attOut := attention(x, width)
		x = norm(b.apply(ops.NewAdd(), attOut, x))

		stacks := cfg.ffnStacks
		if stacks == 0 {
			stacks = 1
		}
		for s := 0; s < stacks; s++ {
			h := gelu(linearShared(x, cfg.ffn))
			h = linearShared(h, width)
			x = norm(b.apply(ops.NewAdd(), h, x))
		}
		if cfg.bottleneck > 0 {
			x = norm(linearShared(x, cfg.hidden))
			x = b.apply(ops.NewAdd(), x, v)
		}
		v = b.exportCruft(x, cfg.casts, cfg.ids, cfg.tPairs, cfg.rPairs)
	}

	v = b.layerNorm(v)
	logits := linearShared(v, cfg.hidden)
	logits = b.apply(ops.NewTanh(), logits)
	b.g.MarkOutput(logits)
	return b.g
}

func intSqrt(n int) int {
	i := 1
	for i*i < n {
		i++
	}
	return i
}

// TinyBERT: 4 layers, hidden 312 (distilled BERT). ~4 GFLOPs at seq 128.
func TinyBERT() *graph.Graph {
	return buildTransformer(tfConfig{
		name: "TinyBERT", blocks: 4, hidden: 312, heads: 12, seq: 128, ffn: 1200,
		tokenTypes: true,
		casts:      12, ids: 6, tPairs: 4, rPairs: 3,
	})
}

// DistilBERT: 6 layers, hidden 768. ~35 GFLOPs at seq 384.
func DistilBERT() *graph.Graph {
	return buildTransformer(tfConfig{
		name: "DistilBERT", blocks: 6, hidden: 768, heads: 12, seq: 384, ffn: 3072,
		casts: 8, ids: 3, tPairs: 2, rPairs: 2,
	})
}

// ALBERT: 12 layers sharing one parameter set, factorized embeddings.
func ALBERT() *graph.Graph {
	return buildTransformer(tfConfig{
		name: "ALBERT", blocks: 12, hidden: 768, heads: 12, seq: 384, ffn: 3072,
		shareBlockWeights: true, embedFactor: 128, tokenTypes: true,
		casts: 8, ids: 4, tPairs: 3, rPairs: 3,
	})
}

// BERTBase: 12 layers, hidden 768. ~67 GFLOPs at seq 384.
func BERTBase() *graph.Graph {
	return buildTransformer(tfConfig{
		name: "BERT-base", blocks: 12, hidden: 768, heads: 12, seq: 384, ffn: 3072,
		tokenTypes: true,
		casts:      10, ids: 5, tPairs: 3, rPairs: 3,
	})
}

// MobileBERT: 24 thin blocks with bottlenecks, NoNorm, and 4 stacked FFNs —
// the paper's flagship deep-and-thin model.
func MobileBERT() *graph.Graph {
	return buildTransformer(tfConfig{
		name: "MobileBERT", blocks: 24, hidden: 512, heads: 4, seq: 384, ffn: 512,
		noNorm: true, bottleneck: 128, ffnStacks: 4, tokenTypes: true,
		casts: 10, ids: 5, tPairs: 3, rPairs: 3,
	})
}

// GPT2: 12 decoder blocks, merged QKV, causal masking, tanh GELU, and the
// heaviest export cruft (the original GPT-2 exports carry ~200 glue
// operators per block).
func GPT2() *graph.Graph {
	return buildTransformer(tfConfig{
		name: "GPT-2", blocks: 12, hidden: 768, heads: 12, seq: 320, ffn: 3072,
		geluTanh: true, causal: true, mergedQKV: true,
		casts: 24, ids: 12, tPairs: 8, rPairs: 8,
	})
}
