// Package integration_test drives the full compiler pipeline over
// randomized graphs and asserts end-to-end semantic preservation: for every
// generated DAG, DNNFusion's rewritten+fused execution, the no-fusion
// configuration, and every baseline framework's transformed graph must all
// agree with the reference interpreter. This is the executable form of the
// fusion-legality argument of §3.2.
package integration_test

import (
	"context"
	"fmt"
	"testing"

	"dnnfusion/internal/baseline"
	"dnnfusion/internal/codegen"
	"dnnfusion/internal/core"
	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// rng is a deterministic generator for reproducible random graphs.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

const (
	rows = 4
	cols = 6
)

// randomGraph builds a random DAG over [4x6] tensors: unary and binary
// elementwise ops, MatMul against square weights, Softmax, batch-norm-free
// shuffle round trips, and random fan-out (diamonds). All operators keep
// values in a numerically safe range for the fast-math rewrite rules.
func randomGraph(seed uint64, size int) *graph.Graph {
	r := &rng{s: seed*2654435761 + 1}
	g := graph.New(fmt.Sprintf("rand-%d", seed))
	pool := []*graph.Value{g.AddInput("x", tensor.Of(rows, cols))}
	pick := func() *graph.Value { return pool[r.intn(len(pool))] }

	weightID := 0
	weight := func(dims ...int) *graph.Value {
		weightID++
		w := tensor.NewOf(tensor.Of(dims...)).Rand(seed + uint64(weightID))
		for i, v := range w.Data() {
			w.Data()[i] = v*0.4 + 0.6 // keep positive, bounded
		}
		return g.AddWeight(fmt.Sprintf("w%d", weightID), w)
	}

	for i := 0; i < size; i++ {
		var v *graph.Value
		switch r.intn(10) {
		case 0, 1: // safe unary
			unaries := []func() ops.Operator{
				ops.NewRelu, ops.NewSigmoid, ops.NewTanh, ops.NewAbs,
				ops.NewSqrt, ops.NewSquare, func() ops.Operator { return ops.NewLeakyRelu(0.1) },
				func() ops.Operator { return ops.NewClip(0, 2) },
				func() ops.Operator { return ops.NewMulConst(0.5) },
				func() ops.Operator { return ops.NewAddConst(0.25) },
			}
			v = g.Apply1(unaries[r.intn(len(unaries))](), pick())
		case 2, 3, 4: // binary over two pool values (may alias: x⊙x)
			binaries := []func() ops.Operator{ops.NewAdd, ops.NewMul, ops.NewMin, ops.NewMax}
			v = g.Apply1(binaries[r.intn(len(binaries))](), pick(), pick())
		case 5: // MatMul against a square weight (shape-preserving)
			v = g.Apply1(ops.NewMatMul(), pick(), weight(cols, cols))
		case 6: // Softmax row-wise
			v = g.Apply1(ops.NewSoftmax(-1), pick())
		case 7: // shuffle round trip (rewriting fodder)
			t1 := g.Apply1(ops.NewTranspose(1, 0), pick())
			v = g.Apply1(ops.NewTranspose(1, 0), t1)
		case 8: // reshape round trip
			r1 := g.Apply1(ops.NewReshape(cols, rows), pick())
			v = g.Apply1(ops.NewReshape(rows, cols), r1)
		default: // broadcast add with a [cols] weight (One-to-Many)
			v = g.Apply1(ops.NewAdd(), pick(), weight(cols))
		}
		pool = append(pool, v)
	}
	// The last value plus one random interior value become outputs (the
	// interior output forces multi-output blocks).
	g.MarkOutput(pool[len(pool)-1])
	if extra := pick(); extra != pool[len(pool)-1] && extra.Kind == graph.Intermediate {
		g.MarkOutput(extra)
	}
	return g
}

func feedsFor(g *graph.Graph, seed uint64) map[*graph.Value]*tensor.Tensor {
	feeds := map[*graph.Value]*tensor.Tensor{}
	for i, in := range g.Inputs {
		x := tensor.NewOf(in.Shape).Rand(seed + 1000 + uint64(i))
		for off, v := range x.Data() {
			x.Data()[off] = v*0.4 + 0.6
		}
		feeds[in] = x
	}
	return feeds
}

func reference(t *testing.T, g *graph.Graph, feeds map[*graph.Value]*tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	want, err := graph.InterpretOutputs(g, feeds)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	return want
}

func compare(t *testing.T, label string, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !tensor.AllClose(got[i], want[i], 1e-3) {
			t.Errorf("%s: output %d diverged (max diff %g)",
				label, i, tensor.MaxAbsDiff(got[i], want[i]))
		}
	}
}

const randomSeeds = 40

func TestFullPipelinePreservesSemantics(t *testing.T) {
	for seed := uint64(1); seed <= randomSeeds; seed++ {
		g := randomGraph(seed, 25)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: invalid graph: %v", seed, err)
		}
		feeds := feedsFor(g, seed)
		want := reference(t, g, feeds)

		for _, cfg := range []struct {
			label string
			opts  core.Options
		}{
			{"full", core.Defaults()},
			{"fusion-only", core.Options{Fusion: true}},
			{"rewrite-only", core.Options{GraphRewrite: true}},
			{"ourb", core.Options{}},
		} {
			c, err := core.Compile(g, cfg.opts)
			if err != nil {
				t.Fatalf("seed %d %s: compile: %v", seed, cfg.label, err)
			}
			sessFeeds := make(map[*graph.Value]*tensor.Tensor, len(g.Inputs))
			for i, in := range c.G.Inputs {
				sessFeeds[in] = feeds[g.Inputs[i]]
			}
			got, err := c.NewSession().Run(context.Background(), sessFeeds)
			if err != nil {
				t.Fatalf("seed %d %s: run: %v", seed, cfg.label, err)
			}
			compare(t, fmt.Sprintf("seed %d %s", seed, cfg.label), got, want)
		}
	}
}

func TestBaselinesPreserveSemantics(t *testing.T) {
	for seed := uint64(1); seed <= randomSeeds/2; seed++ {
		g := randomGraph(seed, 20)
		feeds := feedsFor(g, seed)
		want := reference(t, g, feeds)
		for _, f := range []baseline.Framework{baseline.MNN, baseline.TVM, baseline.TFLite, baseline.Pytorch, baseline.OurBPlus} {
			e, plan, err := baseline.Plan(f, g)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, f, err)
			}
			// Re-key the feeds into the clone by input position.
			cfeeds := map[*graph.Value]*tensor.Tensor{}
			for i, in := range e.G.Inputs {
				cfeeds[in] = feeds[g.Inputs[i]]
			}
			got, err := engine.Run(e, plan, cfeeds)
			if err != nil {
				t.Fatalf("seed %d %s: run: %v", seed, f, err)
			}
			compare(t, fmt.Sprintf("seed %d %s", seed, f), got, want)
		}
	}
}

func TestPlanInvariantsOnRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= randomSeeds; seed++ {
		g := randomGraph(seed, 30)
		e := ecg.Build(g)
		plan := fusion.GeneratePlan(e, fusion.Options{})

		// Invariant 1: the plan partitions the nodes.
		seen := map[*graph.Node]bool{}
		for _, b := range plan.Blocks {
			for _, n := range b.Nodes {
				if seen[n] {
					t.Fatalf("seed %d: node %v in two blocks", seed, n)
				}
				seen[n] = true
			}
		}
		if len(seen) != len(g.Nodes) {
			t.Fatalf("seed %d: plan covers %d/%d nodes", seed, len(seen), len(g.Nodes))
		}

		// Invariant 2: every adjacent in-block pair is non-red under the
		// block's evolving mapping (Table 3 compliance).
		for _, b := range plan.Blocks {
			acc := e.Mapping(b.Nodes[0])
			for _, n := range b.Nodes[1:] {
				m := e.Mapping(n)
				_, d1 := fusion.Combine(acc, m)
				_, d2 := fusion.Combine(m, acc)
				if d1 == fusion.FuseBreak && d2 == fusion.FuseBreak {
					t.Errorf("seed %d: block %v holds a red pair %v+%v", seed, b, acc, m)
				}
				if d1 != fusion.FuseBreak {
					acc, _ = fusion.Combine(acc, m)
				} else {
					acc, _ = fusion.Combine(m, acc)
				}
			}
		}

		// Invariant 3: the block DAG schedules (no cycles).
		if _, err := engine.Simulate(e, plan, device.Snapdragon865CPU(), engine.Options{}); err != nil {
			t.Fatalf("seed %d: simulate: %v", seed, err)
		}

		// Invariant 4: at most one Many-to-Many anchor per block
		// (consequence of the red Many-to-Many×Many-to-Many cell).
		for _, b := range plan.Blocks {
			anchors := 0
			for _, n := range b.Nodes {
				if e.Mapping(n) == ops.ManyToMany {
					anchors++
				}
			}
			if anchors > 1 {
				t.Errorf("seed %d: block %v fused %d Many-to-Many anchors", seed, b, anchors)
			}
		}
	}
}

func TestKernelCacheConsistencyOnRandomGraphs(t *testing.T) {
	// Compiling the same random graph twice through a shared cache must
	// reuse every kernel and still execute correctly.
	cache := codegen.NewCache()
	for seed := uint64(1); seed <= 10; seed++ {
		g := randomGraph(seed, 15)
		e := ecg.Build(g)
		plan := fusion.GeneratePlan(e, fusion.Options{})
		if _, err := codegen.CompilePlan(e, plan, cache); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		missesAfterFirst := cache.Misses
		hitsBefore := cache.Hits
		g2 := randomGraph(seed, 15)
		e2 := ecg.Build(g2)
		plan2 := fusion.GeneratePlan(e2, fusion.Options{})
		kernels, err := codegen.CompilePlan(e2, plan2, cache)
		if err != nil {
			t.Fatalf("seed %d: recompile: %v", seed, err)
		}
		if cache.Hits-hitsBefore != len(kernels) {
			t.Errorf("seed %d: %d cache hits for %d kernels", seed, cache.Hits-hitsBefore, len(kernels))
		}
		_ = missesAfterFirst
	}
}
