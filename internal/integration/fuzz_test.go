// Differential fuzzing of the full compiler: random small graphs — biased
// toward the contraction chains the block-level chain fuser targets — are
// compiled across {chain fusion on/off} × {threads 1,8} × {batch 1,3} and
// checked two ways. Against the reference interpreter every configuration
// must agree semantically (the fast-math rewriter may legitimately
// reassociate by a few ULPs, e.g. x·m + x → x·(m+1)). Between
// configurations the comparison is bit-level: chain fusion, thread count,
// and schedule choice must not change a single bit — except a chain
// compiled onto the online-softmax path, whose streaming rescale is
// ULP-bounded per the documented tolerance. The seed corpus runs
// deterministically under plain `go test`; `go test
// -fuzz=FuzzDifferential` explores beyond it.
package integration_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"dnnfusion/internal/core"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// fuzzULPMax mirrors the serving-level onlineChainMaxULP contract: each
// online (streaming-rescale) softmax chain matches the two-pass oracle
// within a few ULPs instead of bit-for-bit (the single-chain bound itself
// is pinned by the micro-attention parity suite). Random graphs compose
// chains: errors compound multiplicatively through cascaded chains
// (observed ~19 ULP at depth 3, ~96 at depth 5 on attenuated tiny
// outputs), and a downstream exp/softmax turns absolute logit error into
// relative output error scaled by the logit magnitude — so no ULP envelope
// in chain count alone is tight for arbitrary graphs. The harness
// therefore accepts an online configuration when an element is within
// 16·n² ULP (tight for tiny magnitudes) OR within a small relative
// tolerance (covers exp-amplified magnitudes); softmax-free
// configurations remain bit-exact with no tolerance at all.
const fuzzULPMax = 16

// fuzzRelTol is the relative-error escape hatch for online-chain
// configurations; real chain defects (a dropped key panel, a wrong
// rescale) show up orders of magnitude above it.
const fuzzRelTol = 3e-5

// onlineULPBound is the ULP leg of the online differential tolerance for a
// configuration that compiled n online chain blocks (0 → bit-exact).
func onlineULPBound(n int) uint32 {
	return fuzzULPMax * uint32(n) * uint32(n)
}

// fuzzULP is the float32 representation distance (0 = bit-identical),
// monotonic across the sign boundary.
func fuzzULP(a, b float32) uint32 {
	ba, bb := math.Float32bits(a), math.Float32bits(b)
	if ba == bb {
		return 0
	}
	norm := func(x uint32) int64 {
		if x&0x80000000 != 0 {
			return -int64(x & 0x7fffffff)
		}
		return int64(x)
	}
	d := norm(ba) - norm(bb)
	if d < 0 {
		d = -d
	}
	return uint32(d)
}

// chainGraph builds a random DAG over [4x6] tensors like randomGraph, but
// biased toward the contraction-chain shapes the chain fuser targets
// (MatMul→Softmax→MatMul, MatMul→pointwise→MatMul) and restricted to
// operators that admit a leading batch axis, so every generated graph also
// exercises the batch-3 configuration. Chain intermediates deliberately
// stay out of the value pool: a second consumer would (correctly) block
// fusion, and fan-out coverage already comes from pick() reuse elsewhere.
func chainGraph(seed uint64, size int) *graph.Graph {
	r := &rng{s: seed*2654435761 + 1}
	g := graph.New(fmt.Sprintf("fuzz-%d", seed))
	pool := []*graph.Value{g.AddInput("x", tensor.Of(rows, cols))}
	pick := func() *graph.Value { return pool[r.intn(len(pool))] }

	weightID := 0
	weight := func(dims ...int) *graph.Value {
		weightID++
		w := tensor.NewOf(tensor.Of(dims...)).Rand(seed + uint64(weightID))
		for i, v := range w.Data() {
			w.Data()[i] = v*0.4 + 0.6
		}
		return g.AddWeight(fmt.Sprintf("w%d", weightID), w)
	}

	for i := 0; i < size; i++ {
		var v *graph.Value
		switch r.intn(10) {
		case 0, 1: // MatMul → Softmax → MatMul: the online-chain shape
			s := g.Apply1(ops.NewMatMul(), pick(), weight(cols, cols))
			p := g.Apply1(ops.NewSoftmax(-1), s)
			v = g.Apply1(ops.NewMatMul(), p, weight(cols, cols))
		case 2, 3: // MatMul → activation → MatMul: the exact-chain shape
			acts := []func() ops.Operator{
				ops.NewRelu, ops.NewSigmoid, ops.NewTanh,
				func() ops.Operator { return ops.NewLeakyRelu(0.1) },
			}
			h := g.Apply1(ops.NewMatMul(), pick(), weight(cols, cols))
			a := g.Apply1(acts[r.intn(len(acts))](), h)
			v = g.Apply1(ops.NewMatMul(), a, weight(cols, cols))
		case 4: // bare MatMul (chain producer candidate with fan-out)
			v = g.Apply1(ops.NewMatMul(), pick(), weight(cols, cols))
		case 5: // Softmax row-wise outside a chain
			v = g.Apply1(ops.NewSoftmax(-1), pick())
		case 6, 7: // binary over two pool values (may alias)
			binaries := []func() ops.Operator{ops.NewAdd, ops.NewMul, ops.NewMin, ops.NewMax}
			v = g.Apply1(binaries[r.intn(len(binaries))](), pick(), pick())
		case 8: // safe unary
			unaries := []func() ops.Operator{
				ops.NewRelu, ops.NewAbs, ops.NewSqrt, ops.NewSquare,
				func() ops.Operator { return ops.NewClip(0, 2) },
				func() ops.Operator { return ops.NewMulConst(0.5) },
			}
			v = g.Apply1(unaries[r.intn(len(unaries))](), pick())
		default: // broadcast add with a [cols] weight (One-to-Many)
			v = g.Apply1(ops.NewAdd(), pick(), weight(cols))
		}
		pool = append(pool, v)
	}
	g.MarkOutput(pool[len(pool)-1])
	if extra := pick(); extra != pool[len(pool)-1] && extra.Kind == graph.Intermediate {
		g.MarkOutput(extra)
	}
	return g
}

// describeGraph renders a repro-friendly node listing for failure dumps.
func describeGraph(g *graph.Graph) string {
	var b strings.Builder
	for _, n := range g.TopoSort() {
		fmt.Fprintf(&b, "  %v\n", n)
	}
	return b.String()
}

// cfgRun is one compiled configuration's result: its outputs and how many
// chain blocks it compiled onto the online-softmax path.
type cfgRun struct {
	outs    []*tensor.Tensor
	onlineN int
}

// onlineChains counts the plan's online chain blocks.
func onlineChains(c *core.Compiled) int {
	n := 0
	for _, b := range c.Plan.Blocks {
		if b.Chain != nil && b.Chain.Online {
			n++
		}
	}
	return n
}

// runCfg compiles and runs one configuration of g; on failure the second
// return describes it.
func runCfg(g *graph.Graph, feeds map[*graph.Value]*tensor.Tensor, chainOn bool, threads int) (cfgRun, string) {
	opts := core.Options{GraphRewrite: true, Fusion: true, OtherOpt: true, ChainFusion: chainOn, Threads: threads}
	c, err := core.Compile(g, opts)
	if err != nil {
		return cfgRun{}, fmt.Sprintf("compile: %v", err)
	}
	sessFeeds := make(map[*graph.Value]*tensor.Tensor, len(g.Inputs))
	for i, in := range c.G.Inputs {
		sessFeeds[in] = feeds[g.Inputs[i]]
	}
	got, err := c.NewSession().Run(context.Background(), sessFeeds)
	if err != nil {
		return cfgRun{}, fmt.Sprintf("run: %v", err)
	}
	return cfgRun{outs: got, onlineN: onlineChains(c)}, ""
}

// diffULP compares two output sets element-wise and reports the first pair
// outside the tolerance ("" = all within). An element passes when it is
// within maxULP representations of the baseline or, for online-chain
// tolerances (maxULP > 0), within the relative escape hatch; maxULP == 0
// demands bit identity.
func diffULP(got, base []*tensor.Tensor, maxULP uint32) string {
	if len(got) != len(base) {
		return fmt.Sprintf("%d outputs, want %d", len(got), len(base))
	}
	for i := range base {
		for k, bv := range base[i].Data() {
			gv := got[i].Data()[k]
			d := fuzzULP(gv, bv)
			if d <= maxULP {
				continue
			}
			if maxULP > 0 {
				diff := float64(gv) - float64(bv)
				if diff < 0 {
					diff = -diff
				}
				scale := math.Max(math.Abs(float64(gv)), math.Abs(float64(bv)))
				if diff <= fuzzRelTol*scale {
					continue
				}
			}
			return fmt.Sprintf("output %d element %d: %v vs baseline %v (%d ULP, max %d)",
				i, k, gv, bv, d, maxULP)
		}
	}
	return ""
}

// differential checks one (seed, size) input across the full configuration
// grid and returns a description of the first failure ("" = all agree).
// The baseline configuration is chain-off single-threaded; every other
// configuration must match it bit-for-bit unless it fused an online chain.
func differential(seed uint64, size int) string {
	base := chainGraph(seed, size)
	if err := base.Validate(); err != nil {
		return fmt.Sprintf("invalid graph: %v", err)
	}
	for _, batch := range []int{1, 3} {
		g := base
		if batch > 1 {
			bg, err := graph.WithLeadingBatch(base, batch)
			if err != nil {
				// Generator ops all admit a leading batch axis; a rejection
				// here is itself a bug worth surfacing.
				return fmt.Sprintf("batch %d: %v", batch, err)
			}
			g = bg
		}
		feeds := feedsFor(g, seed)
		want, err := graph.InterpretOutputs(g, feeds)
		if err != nil {
			return fmt.Sprintf("batch %d: interpret: %v", batch, err)
		}
		ref, msg := runCfg(g, feeds, false, 1)
		if msg != "" {
			return fmt.Sprintf("batch=%d chain=false threads=1: %s", batch, msg)
		}
		for _, chainOn := range []bool{false, true} {
			for _, threads := range []int{1, 8} {
				if !chainOn && threads == 1 {
					continue // the baseline itself
				}
				r, msg := runCfg(g, feeds, chainOn, threads)
				if msg != "" {
					return fmt.Sprintf("batch=%d chain=%v threads=%d: %s", batch, chainOn, threads, msg)
				}
				var maxULP uint32
				if chainOn {
					maxULP = onlineULPBound(r.onlineN)
				}
				if msg := diffULP(r.outs, ref.outs, maxULP); msg != "" {
					return fmt.Sprintf("batch=%d chain=%v threads=%d: %s", batch, chainOn, threads, msg)
				}
			}
		}
		// Semantic preservation vs the interpreter: the rewriter may
		// reassociate (e.g. distributive factoring), so this leg is a
		// tolerance check, not bit-level.
		for i := range want {
			if !tensor.AllClose(ref.outs[i], want[i], 1e-3) {
				return fmt.Sprintf("batch=%d: output %d diverged from interpreter (max diff %g)",
					batch, i, tensor.MaxAbsDiff(ref.outs[i], want[i]))
			}
		}
	}
	return ""
}

// FuzzDifferential is the fuzz entry point. The seed corpus is biased
// toward contraction chains (both online-softmax and exact-activation
// shapes) and runs deterministically in CI under plain `go test`; under
// -fuzz the engine mutates (seed, size) freely. On failure the input is
// shrunk to the smallest failing graph size before reporting, and the
// minimal graph is dumped for offline repro.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(1); seed <= 12; seed++ {
		f.Add(seed, 10)
	}
	// Larger graphs: more fan-out, more chains per graph.
	f.Add(uint64(101), 20)
	f.Add(uint64(202), 24)
	f.Fuzz(func(t *testing.T, seed uint64, size int) {
		if size < 1 {
			size = 1
		}
		if size > 24 { // bound compile cost per input
			size = size%24 + 1
		}
		msg := differential(seed, size)
		if msg == "" {
			return
		}
		// Shrink: the generator is prefix-stable in size (the first k steps
		// of (seed, n) equal (seed, k)), so the smallest failing size is the
		// minimal repro for this seed.
		minSize, minMsg := size, msg
		for s := 1; s < size; s++ {
			if m := differential(seed, s); m != "" {
				minSize, minMsg = s, m
				break
			}
		}
		t.Fatalf("differential mismatch: seed=%d size=%d (minimal repro)\n%s\ngraph:\n%s",
			seed, minSize, minMsg, describeGraph(chainGraph(seed, minSize)))
	})
}

// TestForcedScheduleGridParity sweeps kernel schedules across a grid —
// including deliberately mismatched producer/consumer chain schedules —
// and requires every point to match the tuner-scheduled compilation
// bit-for-bit: the whole-row-group discipline makes kernel bits
// independent of tile choice. The one exception is the online-softmax
// chain, whose rescale cadence follows the producer's key panel, so two
// schedules may each sit a few ULPs from the two-pass oracle and hence up
// to twice the documented bound from each other.
func TestForcedScheduleGridParity(t *testing.T) {
	grid := []ops.Schedule{
		{RowTile: 1, ColPanel: 8, Unroll: 1},
		{RowTile: 2, ColPanel: 16, Unroll: 4},
		{RowTile: 4, ColPanel: 32, Unroll: 4},
		{RowTile: 8, ColPanel: 4096, Unroll: 8},
	}
	for seed := uint64(1); seed <= 6; seed++ {
		g := chainGraph(seed, 12)
		feeds := feedsFor(g, seed)
		ref, msg := runCfg(g, feeds, true, 1)
		if msg != "" {
			t.Fatalf("seed %d baseline: %s", seed, msg)
		}
		for _, cons := range grid {
			for _, prod := range grid {
				c, err := core.Compile(g, core.Defaults())
				if err != nil {
					t.Fatalf("seed %d: compile: %v", seed, err)
				}
				// Force the schedules before the first session binds: the
				// bind path applies whatever the kernel carries.
				for _, k := range c.Kernels {
					if k.Schedule.Zero() {
						continue // non-schedulable kernel
					}
					k.Schedule = cons
					if k.Block.Chain != nil {
						k.ProducerSchedule = prod
					}
				}
				// Two schedule points may each sit at the envelope's edge on
				// opposite sides of the oracle, hence the doubling.
				maxULP := 2 * onlineULPBound(onlineChains(c))
				sessFeeds := make(map[*graph.Value]*tensor.Tensor, len(g.Inputs))
				for i, in := range c.G.Inputs {
					sessFeeds[in] = feeds[g.Inputs[i]]
				}
				got, err := c.NewSession().Run(context.Background(), sessFeeds)
				if err != nil {
					t.Fatalf("seed %d cons=%v prod=%v: run: %v", seed, cons, prod, err)
				}
				if msg := diffULP(got, ref.outs, maxULP); msg != "" {
					t.Fatalf("seed %d cons=%v prod=%v: %s", seed, cons, prod, msg)
				}
			}
		}
	}
}
