package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// countRanger records which elements were covered and by which lanes.
type countRanger struct {
	covered []atomic.Int32
	lanes   [16]atomic.Int32
}

func (r *countRanger) RunRange(lane, lo, hi int) {
	r.lanes[lane].Add(1)
	for i := lo; i < hi; i++ {
		r.covered[i].Add(1)
	}
}

func assertCoveredOnce(t *testing.T, r *countRanger) {
	t.Helper()
	for i := range r.covered {
		if got := r.covered[i].Load(); got != 1 {
			t.Fatalf("element %d covered %d times, want exactly 1", i, got)
		}
	}
}

// TestPoolForCoversRangeOnce pins the dispatch invariant: every element of
// [0, total) is evaluated exactly once, whatever the grain/total ratio.
func TestPoolForCoversRangeOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ total, grain int }{
		{1000, 64}, {1000, 1000}, {1000, 7000}, {3, 1}, {0, 64},
	} {
		r := &countRanger{covered: make([]atomic.Int32, tc.total)}
		p.For(tc.total, tc.grain, r)
		assertCoveredOnce(t, r)
	}
}

// TestPoolCloseRetiresWorkers pins the goroutine-leak fix: Close ends the
// background workers, and later dispatches still cover the range (inline).
func TestPoolCloseRetiresWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)
	r := &countRanger{covered: make([]atomic.Int32, 4096)}
	p.For(4096, 64, r) // lazy-starts the workers
	assertCoveredOnce(t, r)

	p.Close()
	p.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("%d goroutines still running after Close (had %d before the pool)", n, before)
	}

	r2 := &countRanger{covered: make([]atomic.Int32, 4096)}
	p.For(4096, 64, r2) // inline now
	assertCoveredOnce(t, r2)
	if got := r2.lanes[0].Load(); got != 1 {
		t.Errorf("closed pool split work across lanes (%d lane-0 calls), want one inline run", got)
	}
}
