package engine

import (
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// MeasureRunner is the measured-tuning harness over one candidate
// executor: it binds a dedicated session (its own arena and bound
// kernels, warmed up front so the first timed window sees steady state)
// and returns a closure running one inference over the fixed feeds.
// Nothing is shared with any serving session — the candidate executor is
// throwaway, so measuring it cannot disturb a live model's sessions, and
// releasing it returns the arena.
//
// The caller must invoke release when done (it is safe to call after a
// run error). Feeds are keyed by the candidate graph's input values and
// must carry the declared shapes.
func MeasureRunner(x *Executor, feeds map[*graph.Value]*tensor.Tensor) (run func() error, release func(), err error) {
	s := x.NewSession()
	if err := s.Warm(); err != nil {
		s.Release()
		return nil, nil, err
	}
	run = func() error {
		_, err := s.Run(nil, feeds)
		return err
	}
	return run, s.Release, nil
}
