package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// Arena execution test suite: allocation-count assertions, aliasing and
// ownership of copied-out results, Release semantics, and shared-Executor
// race coverage. These pin the zero-allocation contract of the planned
// arena, so they are deliberately strict — a single stray allocation on the
// hot path fails them.

func buildArenaExecutor(t *testing.T) (*graph.Graph, *Executor) {
	t.Helper()
	g, e := buildMLP(t)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	x, err := NewExecutor(e, plan, nil)
	if err != nil {
		t.Fatalf("executor: %v", err)
	}
	return g, x
}

// TestSessionZeroAllocSteadyState proves the tentpole claim at the engine
// layer: a warmed Session.Run performs zero heap allocations.
func TestSessionZeroAllocSteadyState(t *testing.T) {
	g, x := buildArenaExecutor(t)
	s := x.NewSession()
	in := feeds(g, 7)
	ctx := context.Background()
	// Warm: first Run binds the arena and kernels.
	if _, err := s.Run(ctx, in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.Run(ctx, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Session.Run allocates %.0f times per inference, want 0", allocs)
	}
}

// TestSessionOutputsSurviveNextRun pins the copy-out/double-buffer
// contract: the outputs of one Run must remain valid and unchanged after
// the next Run on the same session.
func TestSessionOutputsSurviveNextRun(t *testing.T) {
	g, x := buildArenaExecutor(t)
	s := x.NewSession()
	ctx := context.Background()

	first, err := s.Run(ctx, feeds(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]*tensor.Tensor, len(first))
	for i, o := range first {
		snapshot[i] = o.Clone()
	}

	second, err := s.Run(ctx, feeds(g, 2)) // different inputs
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] == second[i] {
			t.Fatalf("output %d: Run returned the same tensor twice in a row", i)
		}
		if !tensor.AllClose(first[i], snapshot[i], 0) {
			t.Errorf("output %d changed after the next Run (max diff %g)",
				i, tensor.MaxAbsDiff(first[i], snapshot[i]))
		}
		if tensor.AllClose(second[i], snapshot[i], 0) {
			t.Errorf("output %d: second run with different inputs produced identical data", i)
		}
	}
}

// TestSessionOutputsAreNotArenaViews ensures copy-out really copies, in
// both directions: scribbling on the arena's output slot must not change an
// already-returned output, and a caller scribbling on a returned output
// must not corrupt subsequent inference.
func TestSessionOutputsAreNotArenaViews(t *testing.T) {
	g, x := buildArenaExecutor(t)
	s := x.NewSession()
	ctx := context.Background()
	in := feeds(g, 3)

	out, err := s.Run(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	want := out[0].Clone()

	// Direction 1: the returned tensor must not alias the arena slot. The
	// test has package access, so scribble directly on the slot and check
	// the returned copy is untouched.
	slot := s.slots[g.Outputs[0]]
	if slot == nil {
		t.Fatal("output has no arena slot")
	}
	if &slot.Data()[0] == &out[0].Data()[0] {
		t.Fatal("returned output aliases its arena slot")
	}
	slot.Fill(-98765)
	if !tensor.AllClose(out[0], want, 0) {
		t.Error("scribbling on the arena slot changed a returned output")
	}

	// Direction 2: a caller scribbling on its copy must not corrupt the
	// arena or subsequent runs.
	out[0].Fill(-12345)
	again, err := s.Run(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(again[0], want, 1e-6) {
		t.Error("mutating a returned output corrupted subsequent inference")
	}
}

// TestSessionRelease pins the idle-memory contract: a bound session pins
// exactly PlannedPeakBytes of arena; Release drops the slab and the session
// transparently rebinds (and still computes correctly) on the next Run.
func TestSessionRelease(t *testing.T) {
	g, x := buildArenaExecutor(t)
	if x.PlannedPeakBytes() <= 0 {
		t.Fatalf("PlannedPeakBytes = %d, want > 0", x.PlannedPeakBytes())
	}
	s := x.NewSession()
	ctx := context.Background()
	in := feeds(g, 4)

	before, err := s.Run(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	keep := before[0].Clone()

	if got := int64(len(s.arena)) * 4; got != x.PlannedPeakBytes() {
		t.Errorf("bound session pins %d bytes of arena, want PlannedPeakBytes = %d",
			got, x.PlannedPeakBytes())
	}

	s.Release()
	if s.arena != nil || s.programs != nil || s.bound {
		t.Error("Release did not drop the slab and bound programs")
	}
	// Earlier outputs are copies: they survive Release.
	if !tensor.AllClose(before[0], keep, 0) {
		t.Error("Release invalidated previously returned outputs")
	}

	after, err := s.Run(ctx, in) // rebinds transparently
	if err != nil {
		t.Fatalf("run after Release: %v", err)
	}
	if !tensor.AllClose(after[0], keep, 1e-6) {
		t.Error("post-Release run diverges from pre-Release run")
	}
}

// TestSessionRejectsNonInputFeeds pins the planned-arena feeding contract:
// only graph inputs may be fed.
func TestSessionRejectsNonInputFeeds(t *testing.T) {
	g, x := buildArenaExecutor(t)
	s := x.NewSession()
	in := feeds(g, 5)
	for _, v := range g.Values {
		if v.Kind == graph.Weight {
			in[v] = tensor.NewOf(v.Shape)
			break
		}
	}
	if _, err := s.Run(context.Background(), in); err == nil {
		t.Error("feeding a weight under planned-arena execution should fail")
	}
}

// TestSessionsShareNothing is the race gate: 8 goroutines, each with its
// own session over one shared Executor, run distinct inputs concurrently.
// Under -race this proves per-session arenas share nothing through the
// common Executor; the result check proves they do not corrupt each other.
func TestSessionsShareNothing(t *testing.T) {
	g, x := buildArenaExecutor(t)
	const goroutines = 8
	const iterations = 20

	// Ground truth per goroutine, computed sequentially on a throwaway
	// session (sessions are single-goroutine; one per worker below).
	wants := make([][]*tensor.Tensor, goroutines)
	ins := make([]map[*graph.Value]*tensor.Tensor, goroutines)
	ref := x.NewSession()
	for i := 0; i < goroutines; i++ {
		ins[i] = feeds(g, uint64(100+i))
		out, err := ref.Run(context.Background(), ins[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = make([]*tensor.Tensor, len(out))
		for j, o := range out {
			wants[i][j] = o.Clone()
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := x.NewSession()
			for iter := 0; iter < iterations; iter++ {
				out, err := s.Run(context.Background(), ins[i])
				if err != nil {
					errs <- err
					return
				}
				for j := range out {
					if !tensor.AllClose(out[j], wants[i][j], 1e-6) {
						errs <- fmt.Errorf("goroutine %d iter %d: output %d diverged", i, iter, j)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
