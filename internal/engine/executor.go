package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"dnnfusion/internal/codegen"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/obs"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Executor is the immutable runtime form of a compiled plan: every block's
// kernel is compiled exactly once, the block schedule is fixed up front, and
// the memory plan assigns every materialized value a stable arena slot, so
// execution never touches shared mutable state. One Executor serves any
// number of concurrent Sessions; they share its worker pool for
// intra-kernel parallelism (see Pool for the contention discipline).
type Executor struct {
	e     *ecg.ECG
	plan  *fusion.Plan
	order []*fusion.Block
	// kernels is indexed in schedule (order) position, not plan position.
	kernels []*codegen.Kernel
	// memplan maps every graph input and block output to its (offset,
	// size) slot in the per-session arena.
	memplan *MemPlan
	// pool splits kernel output ranges across worker lanes; nil when the
	// executor runs single-threaded.
	pool *Pool
	// kstats accumulates per-kernel execution accounting across every
	// session of the executor, indexed like kernels (schedule order).
	// Counts advance only while telemetry is armed (obs.Armed).
	kstats []*KernelStat
}

// KernelStat is one scheduled kernel's cumulative execution accounting,
// shared by all sessions of an executor. The atomic counters and the
// histogram advance only on profiled runs (obs.Armed), so the unarmed hot
// path pays nothing for their existence.
type KernelStat struct {
	runs    atomic.Uint64
	totalNs atomic.Int64
	// Hist is the kernel's execution-latency histogram in seconds. It is
	// owned by the executor and standalone (not bound to any registry), so
	// a serving layer can attach it to its obs.Registry under per-model
	// labels without double accounting.
	Hist *obs.Histogram
}

// Runs returns how many profiled executions the kernel has recorded.
func (k *KernelStat) Runs() uint64 { return k.runs.Load() }

// TotalNs returns the summed wall time of the kernel's profiled executions.
func (k *KernelStat) TotalNs() int64 { return k.totalNs.Load() }

// Span is one kernel execution in a session's last profiled run: the
// kernel's index into ScheduledKernels, its start offset from the run's
// first kernel, and its duration.
type Span struct {
	Kernel  int
	StartNs int64
	DurNs   int64
}

// KernelProfile aggregates one scheduled kernel's execution accounting —
// the per-kernel cost attribution surfaced as Model.Profile().
type KernelProfile struct {
	Kernel   string
	Schedule ops.Schedule
	Producer ops.Schedule // chain-fused kernels' producer schedule (zero otherwise)
	Chain    bool
	Lanes    int
	Runs     uint64
	TotalNs  int64
}

// NewExecutor schedules the plan's blocks, pairs them with their compiled
// kernels, and computes the arena memory plan, with kernel execution
// parallelized over GOMAXPROCS worker lanes; NewExecutorThreads picks the
// lane count explicitly. kernels must be the result of codegen.CompilePlan
// over the same plan (one kernel per block, in plan.Blocks order); pass nil
// to compile them here.
func NewExecutor(e *ecg.ECG, plan *fusion.Plan, kernels []*codegen.Kernel) (*Executor, error) {
	return NewExecutorThreads(e, plan, kernels, 0)
}

// NewExecutorThreads is NewExecutor with an explicit worker-lane count:
// n < 1 means GOMAXPROCS, 1 disables intra-kernel parallelism.
func NewExecutorThreads(e *ecg.ECG, plan *fusion.Plan, kernels []*codegen.Kernel, n int) (*Executor, error) {
	x, err := newExecutor(e, plan, kernels)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > 1 {
		x.pool = NewPool(n)
		// A pool's workers block on their wake channels indefinitely;
		// retire them when the executor (the only thing that can dispatch
		// to them) becomes unreachable, so long-lived processes that
		// compile many models do not accumulate parked goroutines. The
		// pool itself must not be the cleanup's attachment point — its
		// workers keep it reachable.
		runtime.AddCleanup(x, func(p *Pool) { p.Close() }, x.pool)
	}
	return x, nil
}

// NewExecutorPool builds an executor that BORROWS an existing worker pool
// instead of owning one: batched serving compiles a batch-capacity variant
// of a model and runs it on the base model's pool, so the pair never doubles
// the process's worker lanes. The borrowing executor does not arrange the
// pool's retirement — the owning executor does — so the caller must keep the
// owner reachable for as long as the borrower runs (a closed pool degrades
// every dispatch to an inline single-lane run, which is correct but slow).
// A nil pool yields a single-threaded executor.
func NewExecutorPool(e *ecg.ECG, plan *fusion.Plan, kernels []*codegen.Kernel, pool *Pool) (*Executor, error) {
	x, err := newExecutor(e, plan, kernels)
	if err != nil {
		return nil, err
	}
	x.pool = pool
	return x, nil
}

// newExecutor schedules blocks, pairs kernels, and plans the arena — the
// pool-independent construction shared by every executor constructor.
func newExecutor(e *ecg.ECG, plan *fusion.Plan, kernels []*codegen.Kernel) (*Executor, error) {
	if kernels == nil {
		var err error
		kernels, err = codegen.CompilePlan(e, plan, nil)
		if err != nil {
			return nil, err
		}
	}
	if len(kernels) != len(plan.Blocks) {
		return nil, fmt.Errorf("engine: %d kernels for %d blocks", len(kernels), len(plan.Blocks))
	}
	order, err := scheduleBlocks(plan, e.G)
	if err != nil {
		return nil, err
	}
	kernelOf := make(map[*fusion.Block]*codegen.Kernel, len(kernels))
	for i, b := range plan.Blocks {
		kernelOf[b] = kernels[i]
	}
	scheduled := make([]*codegen.Kernel, len(order))
	kstats := make([]*KernelStat, len(order))
	for i, b := range order {
		scheduled[i] = kernelOf[b]
		kstats[i] = &KernelStat{Hist: obs.NewHistogram(obs.KernelBuckets...)}
	}
	return &Executor{
		e:       e,
		plan:    plan,
		order:   order,
		kernels: scheduled,
		memplan: PlanArena(plan, order, e.G),
		kstats:  kstats,
	}, nil
}

// Pool returns the executor's worker pool (nil when single-threaded). It
// exists so a batch-capacity variant of a model can borrow the base
// executor's lanes via NewExecutorPool.
func (x *Executor) Pool() *Pool { return x.pool }

// Threads returns the executor's worker-lane count (1 when kernel
// execution is single-threaded).
func (x *Executor) Threads() int {
	if x.pool == nil {
		return 1
	}
	return x.pool.Lanes()
}

// Graph returns the compiled graph the executor runs.
func (x *Executor) Graph() *graph.Graph { return x.e.G }

// ScheduledKernels returns the compiled kernels in execution (schedule)
// order — the index space of KernelStats and Span.Kernel. The slice is
// shared and must not be mutated.
func (x *Executor) ScheduledKernels() []*codegen.Kernel { return x.kernels }

// KernelStats returns the executor's per-kernel accounting, aligned with
// ScheduledKernels, so serving layers can attach the histograms to their
// metric registries.
func (x *Executor) KernelStats() []*KernelStat { return x.kstats }

// Profile snapshots the executor's per-kernel execution profile: one entry
// per scheduled kernel with its name, tuner-selected schedule(s), lane
// count, and cumulative profiled run accounting across every session.
func (x *Executor) Profile() []KernelProfile {
	lanes := x.Threads()
	out := make([]KernelProfile, len(x.kernels))
	for i, k := range x.kernels {
		out[i] = KernelProfile{
			Kernel:   k.Name,
			Schedule: k.Schedule,
			Producer: k.ProducerSchedule,
			Chain:    k.Block != nil && k.Block.Chain != nil,
			Lanes:    lanes,
			Runs:     x.kstats[i].Runs(),
			TotalNs:  x.kstats[i].TotalNs(),
		}
	}
	return out
}

// MemPlan returns the executor's arena memory plan.
func (x *Executor) MemPlan() *MemPlan { return x.memplan }

// PlannedPeakBytes is the arena size every bound session allocates — the
// planned peak activation memory under liveness-driven buffer reuse.
func (x *Executor) PlannedPeakBytes() int64 { return x.memplan.PeakBytes() }

// NewSession creates an independent execution session. A session owns its
// arena and bound kernels, so each one may be driven by only one goroutine
// at a time; create one session per serving goroutine. Creation is cheap:
// the arena is allocated and the kernels bound lazily on first Run.
func (x *Executor) NewSession() *Session {
	return &Session{x: x}
}

// parallelizer adapts the executor's pool for kernel binding; a nil
// interface keeps the bound kernels strictly serial.
func (x *Executor) parallelizer() codegen.Parallelizer {
	if x.pool == nil {
		return nil
	}
	return x.pool
}

// Session is the per-goroutine execution state over a shared Executor: one
// arena sized to the memory plan's peak, tensor headers aliasing its slots,
// and the kernels bound to those slots. After the first Run a session's
// steady-state hot path performs zero heap allocations; in exchange an idle
// bound session intentionally pins exactly PlannedPeakBytes() of arena (plus
// two copies of the output set) — call Release to drop that memory and
// rebind on the next Run.
//
// Output tensors are handed to the caller from a double buffer: the set
// returned by one Run remains valid and unchanged through the next Run and
// is reused by the one after that. Callers that retain outputs across more
// than one subsequent Run on the same session must Clone them.
type Session struct {
	x *Executor

	bound    bool
	arena    []float32
	slots    map[*graph.Value]*tensor.Tensor
	programs []*codegen.BoundKernel
	// ring double-buffers the copied-out graph outputs.
	ring   [2][]*tensor.Tensor
	parity int
	// spans is the per-session span ring: one entry per program,
	// overwritten in place on every profiled run (obs.Armed), so recording
	// a run's kernel timeline allocates nothing. profiled marks that at
	// least one profiled run has filled it.
	spans    []Span
	profiled bool
}

// bind allocates the arena, creates the slot views, composes every kernel's
// Source tree over them, and preallocates the output double buffer. All
// per-session allocation happens here, once.
func (s *Session) bind() error {
	mp := s.x.memplan
	g := s.x.e.G
	s.arena = make([]float32, mp.ArenaElems)
	s.slots = make(map[*graph.Value]*tensor.Tensor, mp.NumSlots())
	mp.Each(func(v *graph.Value, slot Slot) {
		s.slots[v] = tensor.ViewOf(s.arena[slot.Offset:slot.Offset+slot.Elems], v.Shape)
	})
	resolve := func(v *graph.Value) (*tensor.Tensor, error) {
		if v.Kind == graph.Weight {
			if v.Data == nil {
				return nil, fmt.Errorf("weight %v has no data (built with AddWeightShape?)", v)
			}
			return v.Data, nil
		}
		t, ok := s.slots[v]
		if !ok {
			return nil, fmt.Errorf("no planned slot for exterior input %v", v)
		}
		return t, nil
	}
	s.programs = make([]*codegen.BoundKernel, len(s.x.kernels))
	for i, k := range s.x.kernels {
		dsts := make([]*tensor.Tensor, len(k.Outputs))
		for j, o := range k.Outputs {
			dst, ok := s.slots[o]
			if !ok {
				return fmt.Errorf("engine: no planned slot for block output %v", o)
			}
			dsts[j] = dst
		}
		bk, err := k.BindParallel(resolve, dsts, s.x.parallelizer())
		if err != nil {
			return err
		}
		s.programs[i] = bk
	}
	s.spans = make([]Span, len(s.programs))
	s.profiled = false
	for r := range s.ring {
		s.ring[r] = make([]*tensor.Tensor, len(g.Outputs))
		for i, out := range g.Outputs {
			s.ring[r][i] = tensor.NewOf(out.Shape)
			if _, ok := s.slots[out]; !ok && out.Data != nil {
				// Rewriting can alias a graph output to a constant; its
				// data never changes, so fill both ring copies once here
				// and skip it in the per-Run copy-out.
				copy(s.ring[r][i].Data(), out.Data.Data())
			}
		}
	}
	s.parity = 0
	s.bound = true
	return nil
}

// Release drops the session's arena, bound kernels, and output buffers, so
// an idle session pins no inference memory. The session remains usable: the
// next Run rebinds (and re-allocates) transparently. Outputs returned by
// earlier Runs stay valid — they are copies, not arena views.
func (s *Session) Release() {
	s.bound = false
	s.arena = nil
	s.slots = nil
	s.programs = nil
	s.ring = [2][]*tensor.Tensor{}
	s.parity = 0
	s.spans = nil
	s.profiled = false
}

// Spans returns the session's last profiled run as per-kernel spans (in
// execution order, Kernel indexing ScheduledKernels). The slice is the
// session's ring: it is overwritten by the next profiled Run and must not
// be retained or mutated. Nil until a Run executes with telemetry armed.
func (s *Session) Spans() []Span {
	if !s.profiled {
		return nil
	}
	return s.spans
}

// Run executes the plan for one set of feeds (keyed by the compiled graph's
// input values) and returns outputs in graph output order. Input data is
// copied into the arena, so the caller may reuse or mutate fed tensors as
// soon as Run returns; outputs are copied out of the arena and follow the
// double-buffer contract documented on Session. Cancellation is checked
// between kernels, so a canceled context aborts mid-inference with
// ctx.Err().
//
// Every graph input must be fed with its declared shape. Feeding any other
// value (weights, intermediates) is an error: under planned-arena execution
// non-input values have fixed backing that a feed cannot override.
func (s *Session) Run(ctx context.Context, feeds map[*graph.Value]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if !s.bound {
		if err := s.bind(); err != nil {
			return nil, err
		}
	}
	g := s.x.e.G
	for _, in := range g.Inputs {
		t, ok := feeds[in]
		if !ok {
			return nil, fmt.Errorf("engine: missing input %v", in)
		}
		if !t.Shape().Equal(in.Shape) {
			return nil, fmt.Errorf("engine: input %v fed with shape %v, want %v", in, t.Shape(), in.Shape)
		}
		copy(s.slots[in].Data(), t.Data())
	}
	if len(feeds) > len(g.Inputs) {
		for v := range feeds {
			if v.Kind != graph.Input {
				return nil, fmt.Errorf("engine: cannot feed non-input value %v under planned-arena execution", v)
			}
		}
	}
	return s.execute(ctx)
}

// Warm binds the session — allocates its arena, composes and binds the
// kernels, and preallocates the output double buffer — without running an
// inference, so a serving process can pay the one-time setup before traffic
// arrives instead of on the first request. Warming an already bound session
// is a no-op.
func (s *Session) Warm() error {
	if s.bound {
		return nil
	}
	return s.bind()
}

// RunBatch executes the plan once over a coalesced batch: the session's
// graph must be the batch-capacity variant of a model (every input's
// leading axis scaled by batch — see graph.WithLeadingBatch), and reqs
// holds up to batch per-request feed maps whose tensors each cover one
// leading-axis segment (1/batch of the corresponding input). Request i's
// data is scattered directly into rows [i*seg, (i+1)*seg) of each input's
// arena slot — no intermediate batch-shaped staging tensor exists anywhere.
// When fewer than batch requests are supplied the tail lanes replicate
// request 0, so partial batches reuse the capacity arena plan unchanged
// (padded lanes recompute request 0's rows; numerically safe where zero
// padding might not be).
//
// Outputs are the batch-shaped ring tensors under the same double-buffer
// contract as Run; callers slice per-request segments out of them. The
// steady-state hot path performs zero heap allocations.
func (s *Session) RunBatch(ctx context.Context, reqs []map[*graph.Value]*tensor.Tensor, batch int) ([]*tensor.Tensor, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("engine: empty batch")
	}
	if len(reqs) > batch {
		return nil, fmt.Errorf("engine: %d requests exceed batch capacity %d", len(reqs), batch)
	}
	if !s.bound {
		if err := s.bind(); err != nil {
			return nil, err
		}
	}
	g := s.x.e.G
	for _, in := range g.Inputs {
		elems := in.Shape.NumElements()
		if elems%batch != 0 {
			return nil, fmt.Errorf("engine: input %v has %d elements, not divisible by batch %d", in, elems, batch)
		}
		seg := elems / batch
		slot := s.slots[in].Data()
		for lane := 0; lane < batch; lane++ {
			req := reqs[0]
			if lane < len(reqs) {
				req = reqs[lane]
			}
			t, ok := req[in]
			if !ok {
				return nil, fmt.Errorf("engine: request %d missing input %v", lane, in)
			}
			if t.NumElements() != seg {
				return nil, fmt.Errorf("engine: request %d feeds input %v with %d elements, want %d (one batch segment)",
					lane, in, t.NumElements(), seg)
			}
			copy(slot[lane*seg:(lane+1)*seg], t.Data())
		}
	}
	return s.execute(ctx)
}

// execute runs the bound kernels over the already-scattered arena inputs
// and copies the graph outputs into the current ring set — the tail shared
// by Run and RunBatch.
func (s *Session) execute(ctx context.Context) ([]*tensor.Tensor, error) {
	g := s.x.e.G
	// Profiling gates on one atomic load per run; when armed, each kernel
	// costs two clock reads and a few atomic updates — no allocation — so
	// the zero-allocs-per-op steady state holds armed or not.
	profiling := obs.Armed()
	var runStart time.Time
	if profiling {
		runStart = time.Now()
	}
	for i, bk := range s.programs {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("engine: canceled before kernel %d/%d: %w", i+1, len(s.programs), err)
			}
		}
		if !profiling {
			bk.ExecuteInto()
			continue
		}
		kStart := time.Now()
		bk.ExecuteInto()
		dur := time.Since(kStart)
		ks := s.x.kstats[i]
		ks.runs.Add(1)
		ks.totalNs.Add(int64(dur))
		ks.Hist.Observe(dur.Seconds())
		s.spans[i] = Span{Kernel: i, StartNs: int64(kStart.Sub(runStart)), DurNs: int64(dur)}
	}
	if profiling {
		s.profiled = true
	}
	out := s.ring[s.parity]
	for i, o := range g.Outputs {
		slot, ok := s.slots[o]
		if !ok {
			// Constant-aliased outputs were copied once at bind time.
			if o.Data != nil {
				continue
			}
			return nil, fmt.Errorf("engine: output %v not produced", o)
		}
		copy(out[i].Data(), slot.Data())
	}
	s.parity = 1 - s.parity
	return out, nil
}
