package engine

import (
	"context"
	"fmt"

	"dnnfusion/internal/codegen"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// Executor is the immutable runtime form of a compiled plan: every block's
// kernel is compiled exactly once and the block schedule is fixed up front,
// so execution never touches shared mutable state. One Executor serves any
// number of concurrent Sessions.
type Executor struct {
	e     *ecg.ECG
	plan  *fusion.Plan
	order []*fusion.Block
	// kernels is indexed in schedule (order) position, not plan position.
	kernels []*codegen.Kernel
}

// NewExecutor schedules the plan's blocks and pairs them with their compiled
// kernels. kernels must be the result of codegen.CompilePlan over the same
// plan (one kernel per block, in plan.Blocks order); pass nil to compile
// them here.
func NewExecutor(e *ecg.ECG, plan *fusion.Plan, kernels []*codegen.Kernel) (*Executor, error) {
	if kernels == nil {
		var err error
		kernels, err = codegen.CompilePlan(e, plan, nil)
		if err != nil {
			return nil, err
		}
	}
	if len(kernels) != len(plan.Blocks) {
		return nil, fmt.Errorf("engine: %d kernels for %d blocks", len(kernels), len(plan.Blocks))
	}
	order, err := scheduleBlocks(plan, e.G)
	if err != nil {
		return nil, err
	}
	kernelOf := make(map[*fusion.Block]*codegen.Kernel, len(kernels))
	for i, b := range plan.Blocks {
		kernelOf[b] = kernels[i]
	}
	scheduled := make([]*codegen.Kernel, len(order))
	for i, b := range order {
		scheduled[i] = kernelOf[b]
	}
	return &Executor{e: e, plan: plan, order: order, kernels: scheduled}, nil
}

// Graph returns the compiled graph the executor runs.
func (x *Executor) Graph() *graph.Graph { return x.e.G }

// NewSession creates an independent execution session. Sessions hold the
// per-run value environment, so each one may be driven by only one goroutine
// at a time; create one session per serving goroutine.
func (x *Executor) NewSession() *Session {
	return &Session{
		x:   x,
		env: make(map[*graph.Value]*tensor.Tensor, len(x.e.G.Values)),
	}
}

// Session is the per-goroutine execution state over a shared Executor. The
// environment map is retained across runs to avoid rehashing the value set
// on every inference.
type Session struct {
	x   *Executor
	env map[*graph.Value]*tensor.Tensor
}

// Run executes the plan for one set of feeds (keyed by the compiled graph's
// input values) and returns outputs in graph output order. Cancellation is
// checked between kernels, so a canceled context aborts mid-inference with
// ctx.Err().
func (s *Session) Run(ctx context.Context, feeds map[*graph.Value]*tensor.Tensor) ([]*tensor.Tensor, error) {
	clear(s.env)
	for v, t := range feeds {
		s.env[v] = t
	}
	for i, k := range s.x.kernels {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("engine: canceled before kernel %d/%d: %w", i+1, len(s.x.kernels), err)
			}
		}
		outs, err := k.Execute(s.env)
		if err != nil {
			return nil, err
		}
		for v, t := range outs {
			s.env[v] = t
		}
	}
	g := s.x.e.G
	results := make([]*tensor.Tensor, len(g.Outputs))
	for i, out := range g.Outputs {
		t, ok := s.env[out]
		if !ok {
			return nil, fmt.Errorf("engine: output %v not produced", out)
		}
		results[i] = t
	}
	// Drop the environment's tensor references (the caller owns the
	// results) so an idle session doesn't pin a whole inference's worth of
	// intermediates; the map keeps its capacity for the next run.
	clear(s.env)
	return results, nil
}
