package engine

import (
	"testing"

	"dnnfusion/internal/codegen"
	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// buildMLP builds a small two-layer MLP with elementwise epilogues.
func buildMLP(t *testing.T) (*graph.Graph, *ecg.ECG) {
	t.Helper()
	g := graph.New("mlp")
	x := g.AddInput("x", tensor.Of(16, 64))
	w1 := g.AddWeight("w1", tensor.New(64, 96).Rand(1))
	b1 := g.AddWeight("b1", tensor.New(96).Rand(2))
	h := g.Apply1(ops.NewMatMul(), x, w1)
	h = g.Apply1(ops.NewAdd(), h, b1)
	h = g.Apply1(ops.NewRelu(), h)
	w2 := g.AddWeight("w2", tensor.New(96, 32).Rand(3))
	o := g.Apply1(ops.NewMatMul(), h, w2)
	o = g.Apply1(ops.NewSoftmax(-1), o)
	g.MarkOutput(o)
	if err := g.Validate(); err != nil {
		t.Fatalf("mlp invalid: %v", err)
	}
	return g, ecg.Build(g)
}

func feeds(g *graph.Graph, seed uint64) map[*graph.Value]*tensor.Tensor {
	m := map[*graph.Value]*tensor.Tensor{}
	for i, in := range g.Inputs {
		m[in] = tensor.NewOf(in.Shape).Rand(seed + uint64(i))
	}
	return m
}

func TestRunMatchesInterpreter(t *testing.T) {
	g, e := buildMLP(t)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	f := feeds(g, 7)
	want, err := graph.InterpretOutputs(g, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(e, plan, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !tensor.AllClose(got[i], want[i], 1e-4) {
			t.Errorf("fused engine output %d differs (max diff %g)",
				i, tensor.MaxAbsDiff(got[i], want[i]))
		}
	}
	// The no-fusion singleton plan must agree too.
	_, e2 := buildMLP(t)
	singleton := fusion.SingletonPlan(e2)
	got2, err := Run(e2, singleton, feeds(e2.G, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !tensor.AllClose(got2[i], want[i], 1e-4) {
			t.Errorf("singleton engine output %d differs", i)
		}
	}
}

func TestSimulateFusionReducesEverything(t *testing.T) {
	g, e := buildMLP(t)
	dev := device.Snapdragon865CPU()
	fused, err := Simulate(e, fusion.GeneratePlan(e, fusion.Options{}), dev, Options{OtherOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	_, e2 := buildMLP(t)
	unfused, err := Simulate(e2, fusion.SingletonPlan(e2), dev, Options{OtherOpt: false})
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	if fused.LatencyMs >= unfused.LatencyMs {
		t.Errorf("fusion did not reduce latency: %v >= %v", fused.LatencyMs, unfused.LatencyMs)
	}
	if fused.Kernels >= unfused.Kernels {
		t.Errorf("fusion did not reduce kernels: %d >= %d", fused.Kernels, unfused.Kernels)
	}
	if fused.MemAccessBytes >= unfused.MemAccessBytes {
		t.Errorf("fusion did not reduce memory accesses: %d >= %d",
			fused.MemAccessBytes, unfused.MemAccessBytes)
	}
	if fused.PeakMemBytes > unfused.PeakMemBytes {
		t.Errorf("fusion increased peak memory: %d > %d", fused.PeakMemBytes, unfused.PeakMemBytes)
	}
	if fused.UtilizationPct <= unfused.UtilizationPct {
		t.Errorf("fusion did not improve utilization: %.1f%% <= %.1f%%",
			fused.UtilizationPct, unfused.UtilizationPct)
	}
	for name, misses := range fused.CacheMisses {
		if misses >= unfused.CacheMisses[name] {
			t.Errorf("%s misses not reduced: %d >= %d", name, misses, unfused.CacheMisses[name])
		}
	}
}

func TestSimulateGPUBenefitsMoreFromFusion(t *testing.T) {
	// The paper: GPU gains more from fusion because of launch overhead
	// and smaller caches.
	ratio := func(dev *device.Device) float64 {
		_, e := buildMLP(t)
		fused, err := Simulate(e, fusion.GeneratePlan(e, fusion.Options{}), dev, Options{OtherOpt: true})
		if err != nil {
			t.Fatal(err)
		}
		_, e2 := buildMLP(t)
		unfused, err := Simulate(e2, fusion.SingletonPlan(e2), dev, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return unfused.LatencyMs / fused.LatencyMs
	}
	cpu := ratio(device.Snapdragon865CPU())
	gpu := ratio(device.Adreno650())
	if gpu <= cpu {
		t.Errorf("GPU fusion speedup %.2fx should exceed CPU %.2fx", gpu, cpu)
	}
}

func TestSimulateQualityScalesLatency(t *testing.T) {
	_, e := buildMLP(t)
	plan := fusion.SingletonPlan(e)
	dev := device.Snapdragon865CPU()
	good, _ := Simulate(e, plan, dev, Options{Quality: 1.0})
	bad, _ := Simulate(e, plan, dev, Options{Quality: 0.5})
	if bad.LatencyMs <= good.LatencyMs {
		t.Errorf("lower quality should be slower: %v <= %v", bad.LatencyMs, good.LatencyMs)
	}
}

func TestSimulateKernelCacheShared(t *testing.T) {
	cache := codegen.NewCache()
	_, e := buildMLP(t)
	if _, err := Simulate(e, fusion.GeneratePlan(e, fusion.Options{}), device.Snapdragon865CPU(),
		Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses
	_, e2 := buildMLP(t)
	if _, err := Simulate(e2, fusion.GeneratePlan(e2, fusion.Options{}), device.Snapdragon865CPU(),
		Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Hits != misses {
		t.Errorf("cache hits = %d, want %d (identical model reuses all kernels)", cache.Hits, misses)
	}
}

func TestPlanMemoryReuse(t *testing.T) {
	// A chain of equal-size elementwise ops reuses buffers: peak must be
	// far below the sum of all intermediates.
	g := graph.New("chain")
	x := g.AddInput("x", tensor.Of(1024))
	v := x
	for i := 0; i < 10; i++ {
		v = g.Apply1(ops.NewExp(), v)
	}
	g.MarkOutput(v)
	e := ecg.Build(g)
	plan := fusion.SingletonPlan(e)
	order, err := scheduleBlocks(plan, g)
	if err != nil {
		t.Fatal(err)
	}
	peak := PlanMemory(plan, order, g)
	total := g.IntermediateBytes() + 4*1024
	if peak >= total/2 {
		t.Errorf("peak %d too close to no-reuse total %d", peak, total)
	}
	if peak < 2*4*1024 {
		t.Errorf("peak %d below the two live buffers a chain needs", peak)
	}
}

func TestScheduleBlocksRespectsDeps(t *testing.T) {
	g, e := buildMLP(t)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	order, err := scheduleBlocks(plan, g)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*fusion.Block]int{}
	for i, b := range order {
		pos[b] = i
	}
	for _, b := range order {
		for _, in := range b.Inputs() {
			if in.Producer == nil {
				continue
			}
			p := plan.BlockOf(in.Producer)
			if p != b && pos[p] >= pos[b] {
				t.Fatalf("block order violates dependency")
			}
		}
	}
}

func TestDevicePriceMonotonicity(t *testing.T) {
	dev := device.Snapdragon865CPU()
	small := dev.Price(device.Work{FLOPs: 1000, ReadBytes: 1 << 10, WriteBytes: 1 << 10})
	big := dev.Price(device.Work{FLOPs: 1000000, ReadBytes: 1 << 20, WriteBytes: 1 << 20})
	if big.TimeMs <= small.TimeMs {
		t.Errorf("bigger kernel not slower: %v <= %v", big.TimeMs, small.TimeMs)
	}
	heavy := dev.Price(device.Work{FLOPs: 1 << 30, ReadBytes: 1 << 20, WriteBytes: 1 << 20, Heavy: true})
	light := dev.Price(device.Work{FLOPs: 1 << 30, ReadBytes: 1 << 20, WriteBytes: 1 << 20, Heavy: false})
	if heavy.ComputeMs >= light.ComputeMs {
		t.Errorf("heavy kernels should hit higher efficiency: %v >= %v", heavy.ComputeMs, light.ComputeMs)
	}
	opt := dev.Price(device.Work{FLOPs: 1 << 30, ReadBytes: 1 << 20, WriteBytes: 1 << 20, Heavy: true, LayoutOptimized: true})
	if opt.ComputeMs >= heavy.ComputeMs {
		t.Errorf("layout optimization should speed heavy kernels: %v >= %v", opt.ComputeMs, heavy.ComputeMs)
	}
}
