package engine

import (
	"context"
	"sync"
	"testing"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// Batched-session execution suite: RunBatch scatter semantics (bit-exact
// against sequential Runs), partial-batch padding, the zero-allocation
// contract on the batched hot path, Warm, and pool borrowing across
// executors.

// buildBatchPair compiles the MLP at base capacity and at batch capacity n
// (leading axis scaled), the batch executor borrowing the base pool.
func buildBatchPair(t *testing.T, n int) (base *graph.Graph, bx *Executor, bg *graph.Graph, nx *Executor) {
	t.Helper()
	base, e := buildMLP(t)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	var err error
	bx, err = NewExecutor(e, plan, nil)
	if err != nil {
		t.Fatalf("base executor: %v", err)
	}
	bg, err = graph.WithLeadingBatch(base, n)
	if err != nil {
		t.Fatalf("WithLeadingBatch: %v", err)
	}
	be := ecg.Build(bg)
	bplan := fusion.GeneratePlan(be, fusion.Options{})
	nx, err = NewExecutorPool(be, bplan, nil, bx.Pool())
	if err != nil {
		t.Fatalf("batch executor: %v", err)
	}
	return base, bx, bg, nx
}

// segFeeds builds n per-request feed maps for the batch graph's inputs,
// each holding one base-shaped segment, plus the same tensors keyed by the
// base graph's inputs for sequential reference runs.
func segFeeds(baseG, batchG *graph.Graph, n int, seed uint64) (reqs []map[*graph.Value]*tensor.Tensor, refs []map[*graph.Value]*tensor.Tensor) {
	for i := 0; i < n; i++ {
		req := map[*graph.Value]*tensor.Tensor{}
		ref := map[*graph.Value]*tensor.Tensor{}
		for j, in := range batchG.Inputs {
			tns := tensor.NewOf(baseG.Inputs[j].Shape).Rand(seed + uint64(i*31+j))
			req[in] = tns
			ref[baseG.Inputs[j]] = tns
		}
		reqs = append(reqs, req)
		refs = append(refs, ref)
	}
	return reqs, refs
}

func TestRunBatchMatchesSequentialRunsBitExact(t *testing.T) {
	const n = 4
	baseG, bx, batchG, nx := buildBatchPair(t, n)
	reqs, refs := segFeeds(baseG, batchG, n, 11)
	ctx := context.Background()

	bs := nx.NewSession()
	outs, err := bs.RunBatch(ctx, reqs, n)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	ref := bx.NewSession()
	for i := 0; i < n; i++ {
		want, err := ref.Run(ctx, refs[i])
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		for o := range want {
			seg := want[o].NumElements()
			got := outs[o].Data()[i*seg : (i+1)*seg]
			for k, w := range want[o].Data() {
				if got[k] != w {
					t.Fatalf("request %d output %d element %d: batched %v != sequential %v (must be bit-exact)",
						i, o, k, got[k], w)
				}
			}
		}
	}
}

func TestRunBatchPartialPadsWithRequestZero(t *testing.T) {
	const n = 4
	baseG, bx, batchG, nx := buildBatchPair(t, n)
	reqs, refs := segFeeds(baseG, batchG, 2, 23)
	ctx := context.Background()

	outs, err := nx.NewSession().RunBatch(ctx, reqs, n)
	if err != nil {
		t.Fatalf("partial RunBatch: %v", err)
	}
	ref := bx.NewSession()
	want0, err := ref.Run(ctx, refs[0])
	if err != nil {
		t.Fatal(err)
	}
	for o := range want0 {
		seg := want0[o].NumElements()
		data := outs[o].Data()
		// Lanes 2 and 3 replicate request 0.
		for _, lane := range []int{2, 3} {
			got := data[lane*seg : (lane+1)*seg]
			for k, w := range want0[o].Data() {
				if got[k] != w {
					t.Fatalf("padded lane %d output %d element %d: %v, want request 0's %v", lane, o, k, got[k], w)
				}
			}
		}
	}
}

func TestRunBatchZeroAllocSteadyState(t *testing.T) {
	const n = 4
	baseG, _, batchG, nx := buildBatchPair(t, n)
	reqs, _ := segFeeds(baseG, batchG, n, 5)
	ctx := context.Background()
	s := nx.NewSession()
	if _, err := s.RunBatch(ctx, reqs, n); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.RunBatch(ctx, reqs, n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Session.RunBatch allocates %.1f times per batch, want 0", allocs)
	}
	// Partial batches share the same hot path.
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := s.RunBatch(ctx, reqs[:2], n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed partial RunBatch allocates %.1f times per batch, want 0", allocs)
	}
}

func TestRunBatchRejectsBadBatches(t *testing.T) {
	const n = 2
	baseG, _, batchG, nx := buildBatchPair(t, n)
	reqs, _ := segFeeds(baseG, batchG, n, 3)
	ctx := context.Background()
	s := nx.NewSession()
	if _, err := s.RunBatch(ctx, nil, n); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := s.RunBatch(ctx, append(reqs, reqs[0]), n); err == nil {
		t.Error("over-capacity batch accepted")
	}
	bad := map[*graph.Value]*tensor.Tensor{batchG.Inputs[0]: tensor.New(3)}
	if _, err := s.RunBatch(ctx, []map[*graph.Value]*tensor.Tensor{bad}, n); err == nil {
		t.Error("wrong-sized segment accepted")
	}
}

func TestSessionWarmBindsWithoutRunning(t *testing.T) {
	g, x := buildArenaExecutor(t)
	s := x.NewSession()
	if err := s.Warm(); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	if err := s.Warm(); err != nil {
		t.Fatalf("second Warm: %v", err)
	}
	// A warmed session's first Run is already on the zero-alloc hot path.
	in := feeds(g, 9)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Run(ctx, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Run after Warm allocates %.1f times, want 0", allocs)
	}
}

// TestSharedPoolExecutorsRunConcurrently drives sessions of a base
// executor and a pool-borrowing batch executor from concurrent goroutines:
// the dispatch-lock discipline must keep lanes race-free across executors
// (run under -race).
func TestSharedPoolExecutorsRunConcurrently(t *testing.T) {
	base, e := buildMLP(t)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	bx, err := NewExecutorThreads(e, plan, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := graph.WithLeadingBatch(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	be := ecg.Build(bg)
	nx, err := NewExecutorPool(be, fusion.GeneratePlan(be, fusion.Options{}), nil, bx.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if nx.Threads() != bx.Threads() {
		t.Fatalf("borrowing executor reports %d threads, owner has %d", nx.Threads(), bx.Threads())
	}
	reqs, refs := segFeeds(base, bg, 2, 77)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				s := nx.NewSession()
				for i := 0; i < 20; i++ {
					if _, err := s.RunBatch(ctx, reqs, 2); err != nil {
						t.Errorf("RunBatch: %v", err)
						return
					}
				}
				return
			}
			s := bx.NewSession()
			for i := 0; i < 20; i++ {
				if _, err := s.Run(ctx, refs[w%2]); err != nil {
					t.Errorf("Run: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
