package engine

import (
	"testing"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
)

// chainPlanFor builds the fused plan with the chain-fusion post-pass
// applied, plus its schedule and arena plan.
func chainPlanFor(t *testing.T, g *graph.Graph) (*fusion.Plan, []*fusion.Block, *MemPlan) {
	t.Helper()
	e := ecg.Build(g)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	fusion.FuseChains(e, plan, fusion.Options{})
	order, err := scheduleBlocks(plan, g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return plan, order, PlanArena(plan, order, g)
}

// chainMemplanModels: the two micro models the chain fuser targets (both
// must actually fuse) plus zoo models, where chains may or may not engage
// but the arena-safety property must hold either way.
var chainMemplanModels = []struct {
	name      string
	build     func() *graph.Graph
	mustChain bool
}{
	{"micro-mlp", models.MicroMLP, true},
	{"micro-attention", models.MicroAttention, true},
	{"GPT-2", func() *graph.Graph { g, _ := models.Build("GPT-2"); return g }, false},
	{"VGG-16", func() *graph.Graph { g, _ := models.Build("VGG-16"); return g }, false},
}

// TestMemPlanNoLiveOverlapChainFused re-runs the slot-assigner safety
// property on chain-fused plans: merging a chain changes block outputs
// (the intermediate stops being one) and liveness, and no two
// simultaneously-live values may share arena bytes afterwards either.
func TestMemPlanNoLiveOverlapChainFused(t *testing.T) {
	for _, m := range chainMemplanModels {
		t.Run(m.name, func(t *testing.T) {
			g := m.build()
			if g == nil {
				t.Fatalf("building %s failed", m.name)
			}
			plan, order, mp := chainPlanFor(t, g)
			if m.mustChain && plan.ChainFusions == 0 {
				t.Fatalf("%s compiled without chain fusions", m.name)
			}
			ranges := liveRanges(plan, order, g)
			for i := range ranges {
				a := ranges[i]
				sa, ok := mp.SlotOf(a.v)
				if !ok {
					t.Fatalf("no slot for materialized value %v", a.v)
				}
				for j := i + 1; j < len(ranges); j++ {
					b := ranges[j]
					if a.born > b.dies || b.born > a.dies {
						continue
					}
					sb, _ := mp.SlotOf(b.v)
					if sa.Offset < sb.Offset+sb.Elems && sb.Offset < sa.Offset+sa.Elems {
						t.Errorf("live values %v and %v overlap", a.v, b.v)
					}
				}
			}
		})
	}
}

// TestChainFusionDropsIntermediateFromArena is the memory claim of chain
// fusion, checked at the planner level: the M×N intermediate between the
// contractions holds an arena slot in the unfused plan and none in the
// fused plan, and the fused arena peak is strictly smaller.
func TestChainFusionDropsIntermediateFromArena(t *testing.T) {
	for _, m := range chainMemplanModels[:2] { // the two fusing micros
		t.Run(m.name, func(t *testing.T) {
			g := m.build()
			_, _, mp := planFor(t, g)
			fplan, _, fmp := chainPlanFor(t, g)
			if fmp.ArenaElems >= mp.ArenaElems {
				t.Errorf("fused arena %d elems, unfused %d — chain fusion did not shrink the plan",
					fmp.ArenaElems, mp.ArenaElems)
			}
			// Every chain block's interior values (consumed only inside the
			// block) must have no slot: streaming made them virtual.
			dropped := 0
			for _, b := range fplan.Blocks {
				if b.Chain == nil {
					continue
				}
				for _, n := range b.Nodes {
					for _, v := range n.Outputs {
						if v.Kind != graph.Intermediate {
							continue
						}
						interior := true
						for _, c := range v.Consumers {
							if fplan.BlockOf(c) != b {
								interior = false
							}
						}
						if !interior {
							continue
						}
						if _, ok := fmp.SlotOf(v); ok {
							t.Errorf("chain-interior value %v still holds an arena slot", v)
						} else {
							dropped++
						}
					}
				}
			}
			if dropped == 0 {
				t.Error("no chain-interior value was dropped from the arena")
			}
		})
	}
}
