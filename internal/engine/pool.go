package engine

import (
	"sync"
	"sync/atomic"

	"dnnfusion/internal/codegen"
)

// Pool is the executor's shared worker pool: a fixed set of lanes that
// split a kernel's output range into grain-sized chunks claimed off an
// atomic cursor. One Pool serves every session of an Executor; its
// background goroutines are started lazily on the first parallel dispatch,
// so compiled-but-never-run models (the simulation zoo) cost nothing.
//
// Lane discipline is what makes parallel execution race-free with stateful
// Sources: every BoundKernel composes one Source tree per lane, a dispatch
// assigns each worker a fixed, distinct lane, and the pool runs one
// dispatch at a time (the dispatch lock), so a lane's scratch is only ever
// touched by one goroutine per dispatch. Lane 0 always belongs to the
// calling goroutine, which participates in chunk claiming rather than
// blocking idle.
//
// When the pool is busy serving another session's dispatch, For does not
// queue: the caller runs its whole range inline on lane 0. Concurrent
// sessions already provide request-level parallelism; stacking kernel-level
// parallelism on top would only add convoying.
//
// The steady state allocates nothing: dispatch state lives in the Pool,
// chunks are claimed with an atomic add, and wake/done signals travel over
// preallocated buffered channels — so warmed Runner.Run stays 0 allocs/op
// at any thread count.
type Pool struct {
	lanes int

	// mu is the dispatch lock: one For at a time owns the workers and the
	// dispatch fields below.
	mu      sync.Mutex
	started bool
	closed  bool
	wake    []chan struct{}
	done    chan struct{}

	// Per-dispatch state, written under mu before the workers are woken
	// (the wake send publishes it) and never touched by workers after
	// their done send.
	r      codegen.Ranger
	total  int
	grain  int
	cursor atomic.Int64
}

// NewPool returns a pool with the given number of lanes (including the
// caller's lane 0). lanes < 2 yields a pool whose For always runs inline.
func NewPool(lanes int) *Pool {
	if lanes < 1 {
		lanes = 1
	}
	return &Pool{lanes: lanes}
}

// Lanes returns the number of worker lanes, including the caller's lane 0.
func (p *Pool) Lanes() int {
	if p == nil {
		return 1
	}
	return p.lanes
}

// start spawns the background workers; called once, under mu.
func (p *Pool) start() {
	p.done = make(chan struct{}, p.lanes-1)
	p.wake = make([]chan struct{}, p.lanes-1)
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		go p.worker(i+1, ch)
	}
	p.started = true
}

func (p *Pool) worker(lane int, wake <-chan struct{}) {
	for range wake {
		p.runChunks(lane)
		p.done <- struct{}{}
	}
}

// runChunks claims grain-sized chunks off the shared cursor until the
// dispatch range is exhausted, evaluating each on this goroutine's lane.
func (p *Pool) runChunks(lane int) {
	total, grain := p.total, p.grain
	for {
		hi := int(p.cursor.Add(int64(grain)))
		lo := hi - grain
		if lo >= total {
			return
		}
		if hi > total {
			hi = total
		}
		p.r.RunRange(lane, lo, hi)
	}
}

// For evaluates r over [0, total) in grain-sized chunks across the pool's
// lanes; it implements codegen.Parallelizer. The calling goroutine
// participates as lane 0 and For returns only after every chunk has
// completed (the done receives order all worker writes before the caller's
// next read). Ranges too small to amortize a dispatch, single-lane pools,
// and dispatch-lock contention all degrade to an inline lane-0 run.
func (p *Pool) For(total, grain int, r codegen.Ranger) {
	if total <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p == nil || p.lanes < 2 || total <= grain || !p.mu.TryLock() {
		r.RunRange(0, 0, total)
		return
	}
	if p.closed {
		p.mu.Unlock()
		r.RunRange(0, 0, total)
		return
	}
	if !p.started {
		p.start()
	}
	p.r, p.total, p.grain = r, total, grain
	p.cursor.Store(0)
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	p.runChunks(0)
	for range p.wake {
		<-p.done
	}
	p.r = nil
	p.mu.Unlock()
}

// Close retires the pool's background workers; subsequent dispatches run
// inline on the caller. The executor arranges for Close to run when it
// becomes unreachable (runtime.AddCleanup), so compiled-and-dropped models
// do not leak lanes-1 goroutines per executor for the process lifetime.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.wake {
		close(ch) // ends the worker's range loop
	}
	p.wake = nil
}
