package engine

import (
	"strings"
	"testing"

	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Failure-injection coverage: the engine must fail loudly and descriptively
// on malformed inputs rather than producing silent garbage.

func TestRunMissingFeed(t *testing.T) {
	g, e := buildMLP(t)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	_, err := Run(e, plan, map[*graph.Value]*tensor.Tensor{})
	if err == nil {
		t.Fatal("Run without feeds succeeded")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Errorf("error should mention the missing input: %v", err)
	}
	_ = g
}

func TestRunWrongShapeFeed(t *testing.T) {
	g, e := buildMLP(t)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	bad := map[*graph.Value]*tensor.Tensor{g.Inputs[0]: tensor.New(2, 2)}
	if _, err := Run(e, plan, bad); err == nil {
		t.Fatal("Run with wrong-shape feed succeeded")
	}
}

func TestBuildPlanRejectsBadGroups(t *testing.T) {
	g, e := buildMLP(t)
	// Missing nodes.
	if _, err := fusion.BuildPlan(e, [][]*graph.Node{{g.Nodes[0]}}); err == nil {
		t.Error("BuildPlan with partial coverage succeeded")
	}
	// Duplicate nodes.
	all := make([][]*graph.Node, 0, len(g.Nodes)+1)
	for _, n := range g.Nodes {
		all = append(all, []*graph.Node{n})
	}
	all = append(all, []*graph.Node{g.Nodes[0]})
	if _, err := fusion.BuildPlan(e, all); err == nil {
		t.Error("BuildPlan with duplicated node succeeded")
	}
	// Empty group.
	if _, err := fusion.BuildPlan(e, [][]*graph.Node{{}}); err == nil {
		t.Error("BuildPlan with empty group succeeded")
	}
}

func TestScheduleBlocksDetectsCycle(t *testing.T) {
	// Hand-build a cyclic grouping: {Relu, Add} around an exterior
	// Softmax (the configuration the planner must never produce) and
	// verify the scheduler reports it instead of hanging.
	g := graph.New("cyclic")
	x := g.AddInput("x", tensor.Of(4, 4))
	relu := g.Apply1(ops.NewRelu(), x)
	sm := g.Apply1(ops.NewSoftmax(-1), relu)
	add := g.Apply1(ops.NewAdd(), relu, sm)
	g.MarkOutput(add)
	e := ecg.Build(g)
	plan, err := fusion.BuildPlan(e, [][]*graph.Node{
		{g.Nodes[0], g.Nodes[2]}, // Relu + Add fused around the Softmax
		{g.Nodes[1]},             // Softmax alone
	})
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if _, err := scheduleBlocks(plan, g); err == nil {
		t.Fatal("scheduler accepted a cyclic block grouping")
	}
	if _, err := Simulate(e, plan, nil, Options{}); err == nil {
		t.Fatal("Simulate accepted a cyclic block grouping")
	}
}

func TestSimulateEmptyGraph(t *testing.T) {
	g := graph.New("empty")
	g.AddInput("x", tensor.Of(1))
	e := ecg.Build(g)
	plan := fusion.SingletonPlan(e)
	rep, err := Simulate(e, plan, device.Snapdragon865CPU(), Options{})
	if err != nil {
		t.Fatalf("Simulate of empty graph: %v", err)
	}
	if rep.Kernels != 0 || rep.LatencyMs != 0 {
		t.Errorf("empty graph produced work: %+v", rep)
	}
}
