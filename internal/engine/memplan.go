package engine

import (
	"fmt"

	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
)

// Slot is a planned placement of one materialized value inside a session's
// arena: Offset and Elems are in float32 elements. The byte extent is
// [4*Offset, 4*(Offset+Elems)).
type Slot struct {
	Offset int
	Elems  int
}

// MemPlan is the executable form of the liveness analysis: every value that
// crosses a fusion-block boundary (graph inputs and block outputs; interior
// values are never materialized) is assigned a stable slot in a single
// arena, computed once at compile time. Two simultaneously-live values never
// overlap; values whose live ranges are disjoint may share bytes — that
// reuse is exactly the memory-consumption saving of Figure 8, now executed
// rather than only priced. A MemPlan is immutable after PlanArena and safe
// to share across any number of sessions, each of which allocates its own
// arena of ArenaElems floats.
type MemPlan struct {
	// ArenaElems is the planned arena size in float32 elements; its byte
	// form equals the peak the pricing-only PlanMemory reported.
	ArenaElems int

	slots   map[*graph.Value]Slot
	ordered []*graph.Value // deterministic slot-assignment order
}

// PlanArena runs the liveness-driven buffer-reuse analysis over the blocks
// in execution order and assigns every materialized value its arena slot.
// Weights are excluded (their constant data lives on the graph). The
// algorithm is deterministic: the same plan and order always produce the
// same slot table.
func PlanArena(plan *fusion.Plan, order []*fusion.Block, g *graph.Graph) *MemPlan {
	// Remaining consumer-block counts per materialized value.
	remaining := map[*graph.Value]int{}
	consumersOf := func(v *graph.Value) map[*fusion.Block]bool {
		blocks := map[*fusion.Block]bool{}
		for _, c := range v.Consumers {
			b := plan.BlockOf(c)
			if b != nil && (v.Producer == nil || b != plan.BlockOf(v.Producer)) {
				blocks[b] = true
			}
		}
		return blocks
	}

	// Membership in g.Outputs is the authoritative "is a graph output"
	// test: rewriting can alias an output to a value of any Kind (e.g. an
	// identity-eliminated output becomes the graph input itself), and such
	// slots must survive until copy-out exactly like Kind==Output ones.
	isOutput := make(map[*graph.Value]bool, len(g.Outputs))
	for _, out := range g.Outputs {
		isOutput[out] = true
	}

	type buffer struct {
		offset int
		elems  int
		free   bool
	}
	var buffers []*buffer
	bufferOf := map[*graph.Value]*buffer{}
	mp := &MemPlan{slots: map[*graph.Value]Slot{}}

	alloc := func(v *graph.Value) *buffer {
		elems := v.Shape.NumElements()
		// Best-fit reuse: the smallest free buffer that holds the value,
		// without more than 2x internal waste.
		var best *buffer
		for _, b := range buffers {
			if b.free && b.elems >= elems && b.elems <= 2*elems {
				if best == nil || b.elems < best.elems {
					best = b
				}
			}
		}
		if best == nil {
			best = &buffer{offset: mp.ArenaElems, elems: elems}
			buffers = append(buffers, best)
			mp.ArenaElems += elems
		}
		best.free = false
		mp.slots[v] = Slot{Offset: best.offset, Elems: elems}
		mp.ordered = append(mp.ordered, v)
		return best
	}
	release := func(b *buffer) { b.free = true }

	// Model inputs are live from the start.
	for _, in := range g.Inputs {
		bufferOf[in] = alloc(in)
		remaining[in] = len(consumersOf(in))
	}

	for _, blk := range order {
		for _, out := range blk.Outputs() {
			cons := consumersOf(out)
			remaining[out] = len(cons)
			bufferOf[out] = alloc(out)
		}
		for _, in := range blk.Inputs() {
			if in.Kind == graph.Weight {
				continue
			}
			if _, tracked := remaining[in]; !tracked {
				continue
			}
			remaining[in]--
			// Graph outputs are never released: their slots must survive
			// until the session copies them out after the last kernel.
			if remaining[in] == 0 && !isOutput[in] {
				if b := bufferOf[in]; b != nil {
					release(b)
				}
			}
		}
	}
	return mp
}

// PeakBytes is the planned arena size in bytes — the memory-consumption
// (MC) quantity of Figure 8, and exactly what every idle bound session pins.
func (p *MemPlan) PeakBytes() int64 { return int64(p.ArenaElems) * 4 }

// NumSlots returns how many values received slots.
func (p *MemPlan) NumSlots() int { return len(p.slots) }

// SlotOf returns the planned slot of v; ok is false for values that are
// never materialized (weights and fused-away interiors).
func (p *MemPlan) SlotOf(v *graph.Value) (Slot, bool) {
	s, ok := p.slots[v]
	return s, ok
}

// Each visits every (value, slot) pair in the deterministic order the
// planner assigned them.
func (p *MemPlan) Each(fn func(v *graph.Value, s Slot)) {
	for _, v := range p.ordered {
		fn(v, p.slots[v])
	}
}

// String summarizes the plan for debugging.
func (p *MemPlan) String() string {
	return fmt.Sprintf("memplan{%d slots, %d bytes}", len(p.slots), p.PeakBytes())
}

// PlanMemory computes the peak activation memory (bytes) of executing the
// blocks in the given order with liveness-driven buffer reuse. Weights are
// excluded (the caller adds ParamBytes). Since the slot assigner and this
// price share one implementation, the peak the simulator reports is by
// construction the arena size sessions actually allocate.
func PlanMemory(plan *fusion.Plan, order []*fusion.Block, g *graph.Graph) int64 {
	return PlanArena(plan, order, g).PeakBytes()
}
