package engine

import (
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
)

// PlanMemory computes the peak activation memory (bytes) of executing the
// blocks in the given order with liveness-driven buffer reuse: each block
// output gets a buffer (reusing a freed one when it fits), and buffers are
// freed once their last consuming block has run. Weights are excluded (the
// caller adds ParamBytes). This is the memory-consumption (MC) quantity of
// Figure 8: fusion shrinks it by eliminating materialized intermediates.
func PlanMemory(plan *fusion.Plan, order []*fusion.Block, g *graph.Graph) int64 {
	// Remaining consumer-block counts per materialized value.
	remaining := map[*graph.Value]int{}
	consumersOf := func(v *graph.Value) map[*fusion.Block]bool {
		blocks := map[*fusion.Block]bool{}
		for _, c := range v.Consumers {
			b := plan.BlockOf(c)
			if b != nil && (v.Producer == nil || b != plan.BlockOf(v.Producer)) {
				blocks[b] = true
			}
		}
		return blocks
	}

	type buffer struct {
		size int64
		free bool
	}
	var buffers []*buffer
	bufferOf := map[*graph.Value]*buffer{}
	var current, peak int64

	alloc := func(size int64) *buffer {
		// Best-fit reuse: the smallest free buffer that holds the value,
		// without more than 2x internal waste.
		var best *buffer
		for _, b := range buffers {
			if b.free && b.size >= size && b.size <= 2*size {
				if best == nil || b.size < best.size {
					best = b
				}
			}
		}
		if best != nil {
			best.free = false
			return best
		}
		b := &buffer{size: size}
		buffers = append(buffers, b)
		current += size
		if current > peak {
			peak = current
		}
		return b
	}
	release := func(b *buffer) { b.free = true }

	// Model inputs are live from the start.
	for _, in := range g.Inputs {
		bufferOf[in] = alloc(in.Shape.Bytes())
		remaining[in] = len(consumersOf(in))
	}

	for _, blk := range order {
		for _, out := range blk.Outputs() {
			cons := consumersOf(out)
			remaining[out] = len(cons)
			bufferOf[out] = alloc(out.Shape.Bytes())
		}
		for _, in := range blk.Inputs() {
			if in.Kind == graph.Weight {
				continue
			}
			if _, tracked := remaining[in]; !tracked {
				continue
			}
			remaining[in]--
			if remaining[in] == 0 && in.Kind != graph.Output {
				if b := bufferOf[in]; b != nil {
					release(b)
				}
			}
		}
	}
	return peak
}
