package engine

import (
	"context"
	"math"
	"testing"

	"dnnfusion/internal/codegen"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/ops"
	"dnnfusion/internal/tensor"
)

// Schedule execution suite: every tile schedule the tuner can select must
// leave execution bit-exact with the scalar reference interpreter — across
// worker-lane counts (the schedule also drives the pool's grain alignment)
// and across batch capacities (batched compiles re-select schedules for
// the taller shapes) — and must not cost the warmed hot path its
// zero-allocation contract.

// engineScheduleGrid spans the heights and panels the blocked kernels
// implement, plus values that normalize (height 3, panel wider than N).
var engineScheduleGrid = []ops.Schedule{
	{RowTile: 1, ColPanel: 8, Unroll: 1},
	{RowTile: 2, ColPanel: 16, Unroll: 2},
	{RowTile: 3, ColPanel: 33, Unroll: 4},
	{RowTile: 4, ColPanel: 64, Unroll: 4},
	{RowTile: 8, ColPanel: 512, Unroll: 8},
}

// compileWithSchedule compiles g's plan and forces sched onto every
// schedulable kernel, bypassing the tuner: the grid must hold for any
// schedule, not only the ones the current fitness surface picks.
func compileWithSchedule(t *testing.T, g *graph.Graph, sched ops.Schedule, threads int) *Executor {
	t.Helper()
	e := ecg.Build(g)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	kernels, err := codegen.CompilePlan(e, plan, nil)
	if err != nil {
		t.Fatalf("compile plan: %v", err)
	}
	for _, k := range kernels {
		if _, _, _, ok := k.ScheduleTask(); ok {
			k.Schedule = sched
		}
	}
	x, err := NewExecutorThreads(e, plan, kernels, threads)
	if err != nil {
		t.Fatalf("executor: %v", err)
	}
	return x
}

func assertBitEqual(t *testing.T, label string, got, want []*tensor.Tensor) {
	t.Helper()
	for o := range want {
		gd, wd := got[o].Data(), want[o].Data()
		for i := range wd {
			if math.Float32bits(gd[i]) != math.Float32bits(wd[i]) {
				t.Fatalf("%s: output %d element %d = %v, interpreter says %v", label, o, i, gd[i], wd[i])
			}
		}
	}
}

// TestScheduleGridInterpreterParity runs the fused MLP under every grid
// schedule at 1 and 8 worker lanes, against the scalar interpreter,
// bit-for-bit.
func TestScheduleGridInterpreterParity(t *testing.T) {
	for _, sched := range engineScheduleGrid {
		for _, threads := range []int{1, 8} {
			g, _ := buildMLP(t)
			x := tensor.Of(16, 64)
			in := tensor.NewOf(x).Rand(uint64(41 + sched.RowTile))
			feeds := map[*graph.Value]*tensor.Tensor{g.Inputs[0]: in}
			want, err := graph.InterpretOutputs(g, feeds)
			if err != nil {
				t.Fatal(err)
			}
			ex := compileWithSchedule(t, g, sched, threads)
			got, err := ex.NewSession().Run(context.Background(), feeds)
			if err != nil {
				t.Fatalf("rt=%d threads=%d: %v", sched.RowTile, threads, err)
			}
			assertBitEqual(t, "schedule grid", got, want)
		}
	}
}

// TestScheduleGridBatchParity runs the batch-8 capacity variant under
// every grid schedule at 1 and 8 lanes: each request's segment of the
// batched output must equal its own single-request interpreter run,
// bit-for-bit (partial batches included via the 3-request case).
func TestScheduleGridBatchParity(t *testing.T) {
	const batch = 8
	for _, sched := range engineScheduleGrid {
		for _, threads := range []int{1, 8} {
			for _, nreq := range []int{batch, 3} {
				baseG, _ := buildMLP(t)
				batchG, err := graph.WithLeadingBatch(baseG, batch)
				if err != nil {
					t.Fatal(err)
				}
				ex := compileWithSchedule(t, batchG, sched, threads)
				reqs, refs := segFeeds(baseG, batchG, nreq, uint64(7+sched.RowTile))
				outs, err := ex.NewSession().RunBatch(context.Background(), reqs, batch)
				if err != nil {
					t.Fatalf("rt=%d threads=%d nreq=%d: %v", sched.RowTile, threads, nreq, err)
				}
				for i := 0; i < nreq; i++ {
					want, err := graph.InterpretOutputs(baseG, refs[i])
					if err != nil {
						t.Fatal(err)
					}
					for o := range want {
						seg := want[o].NumElements()
						got := outs[o].Data()[i*seg : (i+1)*seg]
						for j := range want[o].Data() {
							if math.Float32bits(got[j]) != math.Float32bits(want[o].Data()[j]) {
								t.Fatalf("rt=%d threads=%d req %d output %d element %d diverges",
									sched.RowTile, threads, i, o, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestScheduleZeroAllocSteadyState pins that schedule application stays a
// bind-time affair: a warmed session under the tallest grid schedule (the
// one that grows accumulator and stripe scratch the most) still runs at
// zero allocations per op, at 1 and 8 lanes.
func TestScheduleZeroAllocSteadyState(t *testing.T) {
	for _, threads := range []int{1, 8} {
		g, _ := buildMLP(t)
		ex := compileWithSchedule(t, g, ops.Schedule{RowTile: 8, ColPanel: 512, Unroll: 8}, threads)
		in := tensor.NewOf(tensor.Of(16, 64)).Rand(5)
		feeds := map[*graph.Value]*tensor.Tensor{g.Inputs[0]: in}
		s := ex.NewSession()
		ctx := context.Background()
		for i := 0; i < 2; i++ {
			if _, err := s.Run(ctx, feeds); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := s.Run(ctx, feeds); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("threads=%d: %v allocs/op under forced schedule, want 0", threads, allocs)
		}
	}
}
