package engine

import (
	"testing"

	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/models"
)

// planFor builds the full fusion plan, schedule, and arena plan for a model
// graph (weights need no data — only shapes are planned).
func planFor(t *testing.T, g *graph.Graph) (*fusion.Plan, []*fusion.Block, *MemPlan) {
	t.Helper()
	e := ecg.Build(g)
	plan := fusion.GeneratePlan(e, fusion.Options{})
	order, err := scheduleBlocks(plan, g)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return plan, order, PlanArena(plan, order, g)
}

// memplanModels is the property-test corpus: one representative per model
// family of Table 5 (2D CNN, R-CNN, Transformer) plus the heaviest CNN.
var memplanModels = []string{"EfficientNet-B0", "VGG-16", "Faster R-CNN", "GPT-2"}

func buildZooModel(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := models.Build(name)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return g
}

// liveRange is the planner-semantics live interval of a slot, in block
// steps: a value is written at step born (inputs at step 0, block outputs
// when their block runs) and must survive until step dies inclusive (the
// last block that reads it, or forever for graph outputs).
type liveRange struct {
	v          *graph.Value
	born, dies int
}

// liveRanges recomputes liveness independently of the slot assigner, from
// the schedule alone.
func liveRanges(plan *fusion.Plan, order []*fusion.Block, g *graph.Graph) []liveRange {
	stepOf := map[*fusion.Block]int{}
	for i, b := range order {
		stepOf[b] = i
	}
	isOutput := map[*graph.Value]bool{}
	for _, out := range g.Outputs {
		isOutput[out] = true
	}
	rangeOf := func(v *graph.Value, born int) liveRange {
		dies := born
		if isOutput[v] {
			dies = len(order) // survives to copy-out
		}
		for _, c := range v.Consumers {
			b := plan.BlockOf(c)
			if b == nil || (v.Producer != nil && b == plan.BlockOf(v.Producer)) {
				continue
			}
			if s := stepOf[b]; s > dies {
				dies = s
			}
		}
		return liveRange{v: v, born: born, dies: dies}
	}
	var out []liveRange
	for _, in := range g.Inputs {
		out = append(out, rangeOf(in, 0))
	}
	for i, b := range order {
		for _, v := range b.Outputs() {
			out = append(out, rangeOf(v, i))
		}
	}
	return out
}

// TestMemPlanNoLiveOverlap is the safety property of the slot assigner: no
// two simultaneously-live values may share arena bytes, for every model in
// the corpus.
func TestMemPlanNoLiveOverlap(t *testing.T) {
	for _, name := range memplanModels {
		t.Run(name, func(t *testing.T) {
			g := buildZooModel(t, name)
			plan, order, mp := planFor(t, g)
			ranges := liveRanges(plan, order, g)
			for i := range ranges {
				a := ranges[i]
				sa, ok := mp.SlotOf(a.v)
				if !ok {
					t.Fatalf("no slot for materialized value %v", a.v)
				}
				for j := i + 1; j < len(ranges); j++ {
					b := ranges[j]
					if a.born > b.dies || b.born > a.dies {
						continue // disjoint in time: may share bytes
					}
					sb, _ := mp.SlotOf(b.v)
					if sa.Offset < sb.Offset+sb.Elems && sb.Offset < sa.Offset+sa.Elems {
						t.Errorf("live values %v [%d,%d) and %v [%d,%d) overlap (steps %d-%d vs %d-%d)",
							a.v, sa.Offset, sa.Offset+sa.Elems,
							b.v, sb.Offset, sb.Offset+sb.Elems,
							a.born, a.dies, b.born, b.dies)
					}
				}
			}
		})
	}
}

// TestMemPlanSlotsInBounds checks that every slot fits inside the arena.
func TestMemPlanSlotsInBounds(t *testing.T) {
	for _, name := range memplanModels {
		t.Run(name, func(t *testing.T) {
			g := buildZooModel(t, name)
			_, _, mp := planFor(t, g)
			mp.Each(func(v *graph.Value, s Slot) {
				if s.Offset < 0 || s.Elems != v.Shape.NumElements() || s.Offset+s.Elems > mp.ArenaElems {
					t.Errorf("slot %+v of %v out of bounds (arena %d elems)", s, v, mp.ArenaElems)
				}
			})
		})
	}
}

// pricedPeak is an independent oracle for the planned peak: a standalone
// replica of the original pricing-only PlanMemory (best-fit reuse of freed
// buffers with at most 2x waste, graph outputs never freed), sharing no
// code with PlanArena. If the slot assigner's reuse policy drifts, the two
// disagree and TestMemPlanPeakMatchesPrice fails.
func pricedPeak(plan *fusion.Plan, order []*fusion.Block, g *graph.Graph) int64 {
	remaining := map[*graph.Value]int{}
	consumersOf := func(v *graph.Value) int {
		blocks := map[*fusion.Block]bool{}
		for _, c := range v.Consumers {
			b := plan.BlockOf(c)
			if b != nil && (v.Producer == nil || b != plan.BlockOf(v.Producer)) {
				blocks[b] = true
			}
		}
		return len(blocks)
	}
	isOutput := map[*graph.Value]bool{}
	for _, out := range g.Outputs {
		isOutput[out] = true
	}
	type buffer struct {
		size int64
		free bool
	}
	var buffers []*buffer
	bufferOf := map[*graph.Value]*buffer{}
	var peak int64
	alloc := func(size int64) *buffer {
		var best *buffer
		for _, b := range buffers {
			if b.free && b.size >= size && b.size <= 2*size {
				if best == nil || b.size < best.size {
					best = b
				}
			}
		}
		if best == nil {
			best = &buffer{size: size}
			buffers = append(buffers, best)
			peak += size
		}
		best.free = false
		return best
	}
	for _, in := range g.Inputs {
		bufferOf[in] = alloc(in.Shape.Bytes())
		remaining[in] = consumersOf(in)
	}
	for _, blk := range order {
		for _, out := range blk.Outputs() {
			remaining[out] = consumersOf(out)
			bufferOf[out] = alloc(out.Shape.Bytes())
		}
		for _, in := range blk.Inputs() {
			if in.Kind == graph.Weight {
				continue
			}
			if _, tracked := remaining[in]; !tracked {
				continue
			}
			remaining[in]--
			if remaining[in] == 0 && !isOutput[in] {
				if b := bufferOf[in]; b != nil {
					b.free = true
				}
			}
		}
	}
	return peak
}

// TestMemPlanPeakMatchesPrice pins plan/price agreement: the arena sessions
// allocate is byte-for-byte the peak the liveness pricing reports (checked
// against an independent replica of the pricing algorithm, since PlanMemory
// itself is now derived from PlanArena), and reuse actually compresses the
// arena below the no-reuse total.
func TestMemPlanPeakMatchesPrice(t *testing.T) {
	for _, name := range memplanModels {
		t.Run(name, func(t *testing.T) {
			g := buildZooModel(t, name)
			plan, order, mp := planFor(t, g)
			if got, want := mp.PeakBytes(), pricedPeak(plan, order, g); got != want {
				t.Errorf("PeakBytes = %d, independent priced peak = %d", got, want)
			}
			if got, want := PlanMemory(plan, order, g), mp.PeakBytes(); got != want {
				t.Errorf("PlanMemory = %d, PeakBytes = %d", got, want)
			}
			var total int64
			seen := map[*graph.Value]bool{}
			mp.Each(func(v *graph.Value, s Slot) {
				if seen[v] {
					t.Errorf("value %v assigned twice", v)
				}
				seen[v] = true
				total += int64(s.Elems) * 4
			})
			if mp.PeakBytes() >= total {
				t.Errorf("no buffer reuse: arena %d >= sum of values %d", mp.PeakBytes(), total)
			}
		})
	}
}

// TestMemPlanDeterministic pins slot stability: planning the same model
// twice (from scratch) must produce identical slot tables, keyed by value
// ID, so recompilation cannot shuffle session memory layouts.
func TestMemPlanDeterministic(t *testing.T) {
	for _, name := range memplanModels {
		t.Run(name, func(t *testing.T) {
			table := func() map[int]Slot {
				g := buildZooModel(t, name)
				_, _, mp := planFor(t, g)
				out := map[int]Slot{}
				mp.Each(func(v *graph.Value, s Slot) { out[v.ID] = s })
				return out
			}
			a, b := table(), table()
			if len(a) != len(b) {
				t.Fatalf("slot counts differ: %d vs %d", len(a), len(b))
			}
			for id, sa := range a {
				if sb, ok := b[id]; !ok || sa != sb {
					t.Errorf("value #%d: slot %+v vs %+v", id, sa, sb)
				}
			}
		})
	}
}
