// Package engine executes fusion plans. It has two paths:
//
//   - Executor/Session: numeric execution of the compiled kernels (pull
//     model). An Executor is the immutable runtime artifact — kernels
//     compiled once, blocks pre-scheduled — and each Session owns the
//     per-goroutine value environment, so many sessions can serve
//     inference concurrently over one Executor. Run is the convenience
//     one-shot form; both match the reference interpreter bit-for-bit up
//     to float tolerance.
//   - Simulate: analytic execution on a device profile, producing latency,
//     memory-access, cache-miss, utilization and peak-memory reports — the
//     quantities Snapdragon Profiler supplied in the paper's evaluation.
//
// The engine also contains the liveness-based memory planner. It is not
// just a price: PlanArena assigns every materialized value a stable arena
// slot at compile time, each Session executes out of one arena sized to the
// planned peak, and PlanMemory (the Figure 8 memory-consumption quantity)
// is derived from the same plan, so simulated and executed peak memory
// cannot drift apart.
package engine

import (
	"context"
	"fmt"

	"dnnfusion/internal/codegen"
	"dnnfusion/internal/device"
	"dnnfusion/internal/ecg"
	"dnnfusion/internal/fusion"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// Options configures simulation.
type Options struct {
	// OtherOpt enables the intra-/inter-block optimizations' effects
	// (§4.4.2): interior data-movement folding and the dominant-operator
	// layout bonus. DNNFusion runs with it on; the Figure 7 breakdown
	// toggles it.
	OtherOpt bool
	// Quality scales kernel efficiency for emulated baseline frameworks
	// (OurB/OurB+/DNNF use 1.0). Zero means 1.0.
	Quality float64
	// Cache, when non-nil, shares generated kernels across models.
	Cache *codegen.Cache
}

// Report aggregates a simulated inference.
type Report struct {
	Device    *device.Device
	LatencyMs float64

	ComputeMs  float64
	MemoryMs   float64
	OverheadMs float64

	Kernels int
	FLOPs   int64

	// Memory accesses (bytes moved to/from DRAM) and peak consumption.
	MemAccessBytes int64
	PeakMemBytes   int64
	WeightBytes    int64
	ActivationPeak int64

	// CacheMisses/TLBMisses are keyed by cache level name.
	CacheMisses map[string]int64
	TLBMisses   map[string]int64

	// UtilizationPct is useful-compute time over total device time.
	UtilizationPct float64

	// KernelCacheHits counts fused implementations reused from the cache.
	KernelCacheHits int
}

// Simulate prices the plan's kernels on the device and plans memory.
func Simulate(e *ecg.ECG, plan *fusion.Plan, dev *device.Device, opts Options) (*Report, error) {
	kernels, err := codegen.CompilePlan(e, plan, opts.Cache)
	if err != nil {
		return nil, err
	}
	order, err := scheduleBlocks(plan, e.G)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Device:      dev,
		Kernels:     len(kernels),
		CacheMisses: map[string]int64{},
		TLBMisses:   map[string]int64{},
	}
	kernelOf := make(map[*fusion.Block]*codegen.Kernel, len(kernels))
	for i, b := range plan.Blocks {
		kernelOf[b] = kernels[i]
	}
	for _, b := range order {
		k := kernelOf[b]
		w := device.Work{
			FLOPs:           k.FLOPs,
			ReadBytes:       k.ReadBytes,
			WriteBytes:      k.WriteBytes,
			Heavy:           k.Heavy(),
			LayoutOptimized: opts.OtherOpt,
			Disruption:      k.Disruption,
			Quality:         opts.Quality,
		}
		if !opts.OtherOpt {
			w.ExtraMovementBytes = k.FoldedMovementBytes()
		} else {
			// The intra-block optimization (Figure 5) converts explicit
			// data movement into index transforms, halving the access
			// disruption fused shuffles cause.
			w.Disruption = (k.Disruption + 1) / 2
		}
		c := dev.Price(w)
		rep.LatencyMs += c.TimeMs
		rep.ComputeMs += c.ComputeMs
		rep.MemoryMs += c.MemoryMs
		rep.OverheadMs += c.OverheadMs
		rep.FLOPs += k.FLOPs
		rep.MemAccessBytes += c.DRAMBytes
		for i, m := range c.CacheMisses {
			rep.CacheMisses[dev.Caches[i].Name] += m
		}
		for i, m := range c.TLBMisses {
			rep.TLBMisses[dev.TLBs[i].Name] += m
		}
	}
	if rep.LatencyMs > 0 {
		rep.UtilizationPct = 100 * rep.ComputeMs / rep.LatencyMs
		if rep.UtilizationPct > 100 {
			rep.UtilizationPct = 100
		}
	}
	rep.WeightBytes = e.G.ParamBytes()
	rep.ActivationPeak = PlanMemory(plan, order, e.G)
	rep.PeakMemBytes = rep.WeightBytes + rep.ActivationPeak
	return rep, nil
}

// scheduleBlocks topologically orders the plan's blocks over the block-level
// dependency DAG.
func scheduleBlocks(plan *fusion.Plan, g *graph.Graph) ([]*fusion.Block, error) {
	deps := map[*fusion.Block]map[*fusion.Block]bool{}
	for _, b := range plan.Blocks {
		deps[b] = map[*fusion.Block]bool{}
		for _, in := range b.Inputs() {
			if in.Producer == nil {
				continue
			}
			p := plan.BlockOf(in.Producer)
			if p != nil && p != b {
				deps[b][p] = true
			}
		}
	}
	var order []*fusion.Block
	done := map[*fusion.Block]bool{}
	for len(order) < len(plan.Blocks) {
		progressed := false
		for _, b := range plan.Blocks {
			if done[b] {
				continue
			}
			ready := true
			for d := range deps[b] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				done[b] = true
				order = append(order, b)
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("engine: block-level cycle in plan")
		}
	}
	return order, nil
}

// Run executes the plan numerically: each block becomes one fused kernel,
// interior values are never materialized. Outputs are returned in graph
// output order.
//
// Run compiles the kernels and schedules the blocks on every call; hot
// paths should build an Executor once and run Sessions over it instead.
func Run(e *ecg.ECG, plan *fusion.Plan, feeds map[*graph.Value]*tensor.Tensor) ([]*tensor.Tensor, error) {
	x, err := NewExecutor(e, plan, nil)
	if err != nil {
		return nil, err
	}
	return x.NewSession().Run(context.Background(), feeds)
}
