// Public-API tests: the facade a downstream user sees, exercised the way
// the README documents it — Compile with functional options into a Model,
// serve through named-I/O Runners, simulate on the device model.
package dnnfusion_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"dnnfusion"
)

func buildPublicMLP(t testing.TB) *dnnfusion.Graph {
	t.Helper()
	g := dnnfusion.NewGraph("api-mlp")
	x := g.AddInput("x", dnnfusion.ShapeOf(4, 16))
	w1 := g.AddWeight("w1", dnnfusion.Rand(16, 32))
	h := g.Apply1(dnnfusion.MatMul(), x, w1)
	h = g.Apply1(dnnfusion.Relu(), h)
	w2 := g.AddWeight("w2", dnnfusion.Rand(32, 8))
	out := g.Apply1(dnnfusion.MatMul(), h, w2)
	out = g.Apply1(dnnfusion.Softmax(-1), out)
	g.MarkOutput(out)
	return g
}

func TestPublicCompileRunSimulate(t *testing.T) {
	g := buildPublicMLP(t)
	model, err := dnnfusion.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if model.FusedLayerCount() >= len(g.Nodes) {
		t.Errorf("no fusion: %d kernels for %d ops", model.FusedLayerCount(), len(g.Nodes))
	}
	if got := model.InputNames(); len(got) != 1 || got[0] != "x" {
		t.Errorf("input names = %v, want [x]", got)
	}
	if got := model.OutputNames(); len(got) != 1 {
		t.Errorf("output names = %v, want one", got)
	}

	input := dnnfusion.Rand(4, 16)
	feeds := map[string]*dnnfusion.Tensor{"x": input}
	got, err := model.NewRunner().Run(context.Background(), feeds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dnnfusion.InterpretNamed(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	outName := model.OutputNames()[0]
	for i := range want[outName].Data() {
		if math.Abs(float64(got[outName].Data()[i]-want[outName].Data()[i])) > 1e-4 {
			t.Fatalf("public API execution diverges at %d", i)
		}
	}

	for _, dev := range []*dnnfusion.Device{dnnfusion.SnapdragonCPU(), dnnfusion.SnapdragonGPU()} {
		rep, err := model.Simulate(dev)
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatencyMs <= 0 || rep.Kernels != model.FusedLayerCount() {
			t.Errorf("%s: bad report %+v", dev, rep)
		}
	}
}

func TestPublicModelZoo(t *testing.T) {
	names := dnnfusion.ModelNames()
	if len(names) != 15 {
		t.Fatalf("model zoo has %d models, want 15", len(names))
	}
	g, err := dnnfusion.BuildModel("VGG-16")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := dnnfusion.BuildModel("not-a-model"); err == nil {
		t.Error("unknown model should fail")
	}
	if len(dnnfusion.Phones()) != 3 {
		t.Error("expected the paper's three phones")
	}
}

func TestPublicProfileDBRoundTrip(t *testing.T) {
	db := dnnfusion.NewProfileDB()
	g := buildPublicMLP(t)
	if _, err := dnnfusion.Compile(g,
		dnnfusion.WithDevice(dnnfusion.SnapdragonCPU()),
		dnnfusion.WithProfileDB(db)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := dnnfusion.LoadProfileDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("round trip lost entries: %d vs %d", back.Len(), db.Len())
	}
}

func TestPublicOptionsAblation(t *testing.T) {
	g := buildPublicMLP(t)
	full, err := dnnfusion.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	none, err := dnnfusion.Compile(g,
		dnnfusion.WithoutRewrite(), dnnfusion.WithoutFusion(), dnnfusion.WithoutBlockOpt())
	if err != nil {
		t.Fatal(err)
	}
	if full.FusedLayerCount() >= none.FusedLayerCount() {
		t.Errorf("full pipeline (%d kernels) should fuse below no-pipeline (%d)",
			full.FusedLayerCount(), none.FusedLayerCount())
	}
	cpu := dnnfusion.SnapdragonCPU()
	rf, _ := full.Simulate(cpu)
	rn, _ := none.Simulate(cpu)
	if rf.LatencyMs >= rn.LatencyMs {
		t.Errorf("full pipeline not faster: %v >= %v", rf.LatencyMs, rn.LatencyMs)
	}
}

// TestRandShapeSeeding pins the Rand fix: same-rank tensors of different
// shapes must not share contents, and the values stay reproducible.
func TestRandShapeSeeding(t *testing.T) {
	a := dnnfusion.Rand(32, 64)
	b := dnnfusion.Rand(64, 32)
	same := true
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("Rand(32,64) and Rand(64,32) produced identical data")
	}
	again := dnnfusion.Rand(32, 64)
	for i := range a.Data() {
		if a.Data()[i] != again.Data()[i] {
			t.Fatal("Rand is not reproducible for a fixed shape")
		}
	}
}
