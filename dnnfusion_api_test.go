// Public-API tests: the facade a downstream user sees, exercised the way
// the README documents it.
package dnnfusion_test

import (
	"math"
	"path/filepath"
	"testing"

	"dnnfusion"
)

func buildPublicMLP(t *testing.T) *dnnfusion.Graph {
	t.Helper()
	g := dnnfusion.NewGraph("api-mlp")
	x := g.AddInput("x", dnnfusion.ShapeOf(4, 16))
	w1 := g.AddWeight("w1", dnnfusion.Rand(16, 32))
	h := g.Apply1(dnnfusion.MatMul(), x, w1)
	h = g.Apply1(dnnfusion.Relu(), h)
	w2 := g.AddWeight("w2", dnnfusion.Rand(32, 8))
	out := g.Apply1(dnnfusion.MatMul(), h, w2)
	out = g.Apply1(dnnfusion.Softmax(-1), out)
	g.MarkOutput(out)
	return g
}

func TestPublicCompileRunSimulate(t *testing.T) {
	g := buildPublicMLP(t)
	compiled, err := dnnfusion.Compile(g, dnnfusion.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if compiled.FusedLayerCount() >= len(g.Nodes) {
		t.Errorf("no fusion: %d kernels for %d ops", compiled.FusedLayerCount(), len(g.Nodes))
	}

	input := dnnfusion.Rand(4, 16)
	got, err := compiled.RunInputs(input)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dnnfusion.Interpret(g, map[*dnnfusion.Value]*dnnfusion.Tensor{g.Inputs[0]: input})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0].Data() {
		if math.Abs(float64(got[0].Data()[i]-want[0].Data()[i])) > 1e-4 {
			t.Fatalf("public API execution diverges at %d", i)
		}
	}

	for _, dev := range []*dnnfusion.Device{dnnfusion.SnapdragonCPU(), dnnfusion.SnapdragonGPU()} {
		rep, err := compiled.Simulate(dev)
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatencyMs <= 0 || rep.Kernels != compiled.FusedLayerCount() {
			t.Errorf("%s: bad report %+v", dev, rep)
		}
	}
}

func TestPublicModelZoo(t *testing.T) {
	names := dnnfusion.ModelNames()
	if len(names) != 15 {
		t.Fatalf("model zoo has %d models, want 15", len(names))
	}
	g, err := dnnfusion.BuildModel("VGG-16")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := dnnfusion.BuildModel("not-a-model"); err == nil {
		t.Error("unknown model should fail")
	}
	if len(dnnfusion.Phones()) != 3 {
		t.Error("expected the paper's three phones")
	}
}

func TestPublicProfileDBRoundTrip(t *testing.T) {
	db := dnnfusion.NewProfileDB()
	g := buildPublicMLP(t)
	opts := dnnfusion.DefaultOptions()
	opts.Device = dnnfusion.SnapdragonCPU()
	opts.ProfileDB = db
	if _, err := dnnfusion.Compile(g, opts); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := dnnfusion.LoadProfileDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("round trip lost entries: %d vs %d", back.Len(), db.Len())
	}
}

func TestPublicOptionsAblation(t *testing.T) {
	g := buildPublicMLP(t)
	full, err := dnnfusion.Compile(g, dnnfusion.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	none, err := dnnfusion.Compile(g, dnnfusion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.FusedLayerCount() >= none.FusedLayerCount() {
		t.Errorf("full pipeline (%d kernels) should fuse below no-pipeline (%d)",
			full.FusedLayerCount(), none.FusedLayerCount())
	}
	cpu := dnnfusion.SnapdragonCPU()
	rf, _ := full.Simulate(cpu)
	rn, _ := none.Simulate(cpu)
	if rf.LatencyMs >= rn.LatencyMs {
		t.Errorf("full pipeline not faster: %v >= %v", rf.LatencyMs, rn.LatencyMs)
	}
}
