package dnnfusion_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dnnfusion"
	"dnnfusion/internal/models"
	"dnnfusion/internal/onnx"
)

// TestImportPublicRoundTrip drives the file-level public API: export a zoo
// model to disk, import it back, compile, and run.
func TestImportPublicRoundTrip(t *testing.T) {
	g := models.MicroMLP()
	path := filepath.Join(t.TempDir(), "micro-mlp.onnx")
	if err := dnnfusion.ExportFile(g, path); err != nil {
		t.Fatalf("ExportFile: %v", err)
	}
	imported, err := dnnfusion.ImportFile(path)
	if err != nil {
		t.Fatalf("ImportFile: %v", err)
	}
	m, err := dnnfusion.Compile(imported, dnnfusion.WithThreads(1))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	feeds := map[string]*dnnfusion.Tensor{}
	for _, name := range m.InputNames() {
		shape, err := m.InputShape(name)
		if err != nil {
			t.Fatal(err)
		}
		feeds[name] = dnnfusion.Rand(shape...)
	}
	out, err := m.NewRunner().Run(context.Background(), feeds)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no outputs")
	}
}

func TestImportErrorTaxonomy(t *testing.T) {
	// Corrupt bytes → ErrImport.
	if _, err := dnnfusion.Import([]byte("not a protobuf")); err == nil {
		t.Fatal("corrupt bytes: want error")
	} else if !errors.Is(err, dnnfusion.ErrImport) {
		t.Fatalf("corrupt bytes: %v does not match ErrImport", err)
	} else if errors.Is(err, dnnfusion.ErrUnsupportedOp) {
		t.Fatalf("corrupt bytes: %v must not match ErrUnsupportedOp", err)
	}

	// Missing file → ErrImport.
	if _, err := dnnfusion.ImportFile(filepath.Join(t.TempDir(), "absent.onnx")); err == nil {
		t.Fatal("missing file: want error")
	} else if !errors.Is(err, dnnfusion.ErrImport) {
		t.Fatalf("missing file: %v does not match ErrImport", err)
	}

	// Truncated valid model → ErrImport, with the path in the message.
	data, err := dnnfusion.Export(models.MicroHead())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "truncated.onnx")
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dnnfusion.ImportFile(path); err == nil {
		t.Fatal("truncated file: want error")
	} else if !errors.Is(err, dnnfusion.ErrImport) {
		t.Fatalf("truncated file: %v does not match ErrImport", err)
	}

	// Unsupported operator → ErrUnsupportedOp + *UnsupportedOpError, all
	// through the public aliases.
	m := &onnx.Model{
		IRVersion: 8, OpsetVersion: 13,
		Graph: &onnx.GraphProto{
			Name:    "rnn",
			Inputs:  []*onnx.ValueInfo{{Name: "x", ElemType: 1, Dims: []int64{1, 4}}},
			Outputs: []*onnx.ValueInfo{{Name: "y", ElemType: 1, Dims: []int64{1, 4}}},
			Nodes: []*onnx.NodeProto{{
				Name: "lstm0", OpType: "LSTM", Inputs: []string{"x"}, Outputs: []string{"y"},
			}},
		},
	}
	_, err = dnnfusion.Import(m.Marshal())
	if err == nil {
		t.Fatal("LSTM: want error")
	}
	if !errors.Is(err, dnnfusion.ErrUnsupportedOp) || !errors.Is(err, dnnfusion.ErrImport) {
		t.Fatalf("LSTM: %v does not match both sentinels", err)
	}
	var ue *dnnfusion.UnsupportedOpError
	if !errors.As(err, &ue) || ue.Op != "LSTM" || ue.Node != `"lstm0"` {
		t.Fatalf("LSTM: bad structured error: %v (as=%+v)", err, ue)
	}
}
