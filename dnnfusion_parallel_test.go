// Parallel-execution suite: the blocked + multi-threaded executor must be
// numerically indistinguishable from the reference interpreter at any
// thread count, stay race-free when sessions share the executor's worker
// pool, and keep the warmed zero-allocation guarantee with threads > 1.
package dnnfusion_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"dnnfusion"

	"dnnfusion/internal/models"
)

// ulpDiff is the distance in float32 representations; 0 means
// bit-identical. Blocked and scalar paths keep identical accumulation
// orders, so everything but genuinely reassociated reductions must be 0.
func ulpDiff(a, b float32) uint32 {
	ba, bb := math.Float32bits(a), math.Float32bits(b)
	if ba == bb {
		return 0
	}
	// Map to a monotonic integer line so the distance is meaningful
	// across the sign boundary.
	norm := func(x uint32) int64 {
		if x&0x80000000 != 0 {
			return -int64(x & 0x7fffffff)
		}
		return int64(x)
	}
	d := norm(ba) - norm(bb)
	if d < 0 {
		d = -d
	}
	return uint32(d)
}

// onlineChainMaxULP is the tolerance for models compiled with an online
// (streaming-rescale) softmax chain: the rescale reassociates the exp/sum
// reduction, so outputs match the two-pass oracle within a few ULPs
// rather than bit-for-bit (float64 accumulation keeps the bound tight).
const onlineChainMaxULP = 16

// runMicroParity executes one micro model through the blocked executor at
// the given thread count and checks every output element against the
// reference interpreter within maxULP.
func runMicroParity(t *testing.T, build func() *dnnfusion.Graph, threads int, maxULP uint32) {
	t.Helper()
	g := build()
	inputs := map[string]*dnnfusion.Tensor{}
	for _, in := range g.Inputs {
		inputs[in.Name] = dnnfusion.Rand(in.Shape...)
	}
	want, err := dnnfusion.InterpretNamed(g, inputs)
	if err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	model, err := dnnfusion.Compile(build(), dnnfusion.WithThreads(threads))
	if err != nil {
		t.Fatalf("compile (threads=%d): %v", threads, err)
	}
	if model.HasOnlineChain() {
		// The online-softmax chain kernel (flash-attention streaming
		// rescale) is the documented ULP-bounded exception to bit
		// exactness; everything else stays exact.
		if maxULP < onlineChainMaxULP {
			maxULP = onlineChainMaxULP
		}
	}
	runner := model.NewRunner()
	defer runner.Release()
	// Run twice so the parity check covers steady state (bound arenas,
	// recycled double buffers), not just the bind path.
	for run := 0; run < 2; run++ {
		got, err := runner.Run(context.Background(), inputs)
		if err != nil {
			t.Fatalf("run (threads=%d): %v", threads, err)
		}
		for name, w := range want {
			gt, ok := got[name]
			if !ok {
				t.Fatalf("threads=%d: output %q missing", threads, name)
			}
			for i, wv := range w.Data() {
				if d := ulpDiff(gt.Data()[i], wv); d > maxULP {
					t.Fatalf("threads=%d run=%d: %s[%d] = %v, interpreter says %v (%d ULP, max %d)",
						threads, run, name, i, gt.Data()[i], wv, d, maxULP)
				}
			}
		}
	}
}

// TestBlockedParallelParity checks every executable micro model through the
// blocked executor against the reference interpreter, single- and
// multi-threaded, bit-for-bit.
func TestBlockedParallelParity(t *testing.T) {
	for _, spec := range models.MicroModels() {
		for _, threads := range []int{1, 8} {
			spec := spec
			threads := threads
			t.Run(spec.Name+threadSuffix(threads), func(t *testing.T) {
				runMicroParity(t, spec.Build, threads, 0)
			})
		}
	}
}

func threadSuffix(n int) string {
	if n == 1 {
		return "/threads=1"
	}
	return "/threads=8"
}

// TestParallelRunnersShareOnePool races several runners of one model, each
// on its own goroutine, all competing for the executor's shared worker
// pool — the -race gate for the lane discipline (per-lane Source trees,
// dispatch lock, inline fallback under contention).
func TestParallelRunnersShareOnePool(t *testing.T) {
	g := models.MicroElementwise()
	inputs := map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(32, 32, 256)}
	want, err := dnnfusion.InterpretNamed(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	model, err := dnnfusion.Compile(models.MicroElementwise(), dnnfusion.WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := model.NewRunner()
			defer runner.Release()
			for j := 0; j < iters; j++ {
				got, err := runner.Run(context.Background(), inputs)
				if err != nil {
					errs <- err
					return
				}
				for i, wv := range want["y"].Data() {
					if ulpDiff(got["y"].Data()[i], wv) != 0 {
						t.Errorf("y[%d] = %v, want %v", i, got["y"].Data()[i], wv)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
