package dnnfusion

import (
	"errors"
	"fmt"

	"dnnfusion/internal/onnx"
)

// The package's error taxonomy. Every error returned by the public API
// wraps exactly one of these sentinels, so callers dispatch with errors.Is
// (and errors.As for the structured kinds) instead of matching message
// strings:
//
//	out, err := runner.Run(ctx, inputs)
//	switch {
//	case errors.Is(err, dnnfusion.ErrShapeMismatch):
//		var se *dnnfusion.ShapeError
//		errors.As(err, &se) // se.Input, se.Want, se.Got
//	case errors.Is(err, dnnfusion.ErrUnknownInput):
//		// caller fed a tensor the model has no input for
//	}
var (
	// ErrUnknownModel reports a model-zoo name BuildModel does not know.
	ErrUnknownModel = errors.New("dnnfusion: unknown model")
	// ErrInvalidGraph reports a structurally broken graph handed to
	// Compile: cycles, inconsistent links, uninferable shapes, or
	// colliding input names.
	ErrInvalidGraph = errors.New("dnnfusion: invalid graph")
	// ErrCompile reports a failure inside the compilation pipeline
	// (rewriting, fusion planning, or code generation) on a graph that
	// passed validation.
	ErrCompile = errors.New("dnnfusion: compilation failed")
	// ErrUnknownInput reports a feed name the model has no input for.
	ErrUnknownInput = errors.New("dnnfusion: unknown input")
	// ErrMissingInput reports a model input the feeds did not supply.
	ErrMissingInput = errors.New("dnnfusion: missing input")
	// ErrShapeMismatch reports a feed whose shape differs from the
	// model's declared input shape. The concrete error is a *ShapeError.
	ErrShapeMismatch = errors.New("dnnfusion: shape mismatch")
	// ErrNotBatchable reports a model whose graph does not admit a
	// leading batch axis: some operator hard-codes the leading extent or
	// collapses it (CompileBatch's structural check). Serving layers
	// treat it as "fall back to per-request execution", not a failure.
	ErrNotBatchable = errors.New("dnnfusion: model not batchable along leading axis")
	// ErrOverloaded reports a request shed by admission control: a
	// serving queue at capacity or a concurrent-request ceiling reached.
	// The request was rejected before any work was done — retrying after
	// a backoff is safe and expected (HTTP layers map it to 429/503 with
	// a Retry-After hint).
	ErrOverloaded = errors.New("dnnfusion: overloaded")
)

// The importer's sentinels live in internal/onnx (the converter cannot
// import this package); they are re-exported here so every sentinel a
// caller dispatches on is a dnnfusion.Err*.
var (
	// ErrImport reports a file Import cannot load as a model: malformed
	// protobuf, a non-float32 tensor, a symbolic dimension, an attribute
	// combination outside the supported subset, or a graph that fails
	// validation after conversion.
	ErrImport = onnx.ErrImport
	// ErrUnsupportedOp reports an ONNX operator Import has no mapping
	// for. It wraps ErrImport; the concrete error is an
	// *UnsupportedOpError carrying the op name and node context.
	ErrUnsupportedOp = onnx.ErrUnsupportedOp
)

// UnsupportedOpError identifies the ONNX operator Import rejected and the
// node it appeared at. It matches errors.Is(err, ErrUnsupportedOp) and
// errors.Is(err, ErrImport), and is extracted with errors.As.
type UnsupportedOpError = onnx.UnsupportedOpError

// ShapeError carries the details of a shape mismatch between a named model
// input and the tensor fed for it. It matches errors.Is(err,
// ErrShapeMismatch) and is extracted with errors.As.
type ShapeError struct {
	// Input is the model input name the bad tensor was fed for.
	Input string
	// Want is the shape the model declared; Got is the shape fed.
	Want, Got Shape
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("%v: input %q wants shape %v, got %v", ErrShapeMismatch, e.Input, e.Want, e.Got)
}

func (e *ShapeError) Unwrap() error { return ErrShapeMismatch }
