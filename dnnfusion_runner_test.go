// Runner tests: the named-I/O serving path — round trips, the typed error
// taxonomy, context cancellation, and concurrent Runners over one shared
// Model (run with -race).
package dnnfusion_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"dnnfusion"
)

// buildTwoIOGraph builds a graph with two named inputs and two named
// outputs, so the tests cover multi-tensor round trips in both directions.
func buildTwoIOGraph(t testing.TB) *dnnfusion.Graph {
	t.Helper()
	g := dnnfusion.NewGraph("two-io")
	a := g.AddInput("a", dnnfusion.ShapeOf(4, 8))
	b := g.AddInput("b", dnnfusion.ShapeOf(8, 8))
	w := g.AddWeight("w", dnnfusion.Rand(8, 8))
	h := g.Apply1(dnnfusion.MatMul(), a, b)
	h = g.Apply1(dnnfusion.Relu(), h)
	sum := g.Apply1(dnnfusion.MatMul(), h, w)
	act := g.Apply1(dnnfusion.Sigmoid(), sum)
	g.MarkOutputAs("sum", sum)
	g.MarkOutputAs("act", act)
	return g
}

func TestRunnerNamedRoundTrip(t *testing.T) {
	g := buildTwoIOGraph(t)
	model, err := dnnfusion.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := model.InputNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("input names = %v, want [a b]", got)
	}
	outNames := model.OutputNames()
	if len(outNames) != 2 || outNames[0] != "sum" || outNames[1] != "act" {
		t.Fatalf("output names = %v, want [sum act]", outNames)
	}
	shape, err := model.InputShape("a")
	if err != nil || !shape.Equal(dnnfusion.ShapeOf(4, 8)) {
		t.Fatalf("InputShape(a) = %v, %v", shape, err)
	}

	inputs := map[string]*dnnfusion.Tensor{
		"a": dnnfusion.Rand(4, 8),
		"b": dnnfusion.Rand(8, 8),
	}
	got, err := model.NewRunner().Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dnnfusion.InterpretNamed(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range outNames {
		w, ok := want[name]
		if !ok {
			t.Fatalf("interpreter missing output %q", name)
		}
		gt, ok := got[name]
		if !ok {
			t.Fatalf("runner missing output %q", name)
		}
		for i := range w.Data() {
			d := float64(w.Data()[i] - gt.Data()[i])
			if d < -1e-4 || d > 1e-4 {
				t.Fatalf("output %q diverges at %d: %v vs %v", name, i, gt.Data()[i], w.Data()[i])
			}
		}
	}
}

func TestRunnerErrorTaxonomy(t *testing.T) {
	g := buildTwoIOGraph(t)
	model, err := dnnfusion.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	runner := model.NewRunner()
	ctx := context.Background()
	good := map[string]*dnnfusion.Tensor{
		"a": dnnfusion.Rand(4, 8),
		"b": dnnfusion.Rand(8, 8),
	}

	// Unknown feed name.
	bad := map[string]*dnnfusion.Tensor{"a": good["a"], "b": good["b"], "zz": dnnfusion.Rand(1)}
	if _, err := runner.Run(ctx, bad); !errors.Is(err, dnnfusion.ErrUnknownInput) {
		t.Errorf("unknown input: got %v, want ErrUnknownInput", err)
	}

	// Missing model input.
	if _, err := runner.Run(ctx, map[string]*dnnfusion.Tensor{"a": good["a"]}); !errors.Is(err, dnnfusion.ErrMissingInput) {
		t.Errorf("missing input: got %v, want ErrMissingInput", err)
	}

	// Shape mismatch: both the sentinel and the structured form.
	_, err = runner.Run(ctx, map[string]*dnnfusion.Tensor{"a": dnnfusion.Rand(4, 9), "b": good["b"]})
	if !errors.Is(err, dnnfusion.ErrShapeMismatch) {
		t.Errorf("shape mismatch: got %v, want ErrShapeMismatch", err)
	}
	var se *dnnfusion.ShapeError
	if !errors.As(err, &se) {
		t.Fatalf("shape mismatch not a *ShapeError: %v", err)
	}
	if se.Input != "a" || !se.Want.Equal(dnnfusion.ShapeOf(4, 8)) || !se.Got.Equal(dnnfusion.ShapeOf(4, 9)) {
		t.Errorf("ShapeError fields = %+v", se)
	}

	// Unknown zoo model.
	if _, err := dnnfusion.BuildModel("no-such-net"); !errors.Is(err, dnnfusion.ErrUnknownModel) {
		t.Errorf("unknown model: got %v, want ErrUnknownModel", err)
	}

	// InputShape on an unknown name.
	if _, err := model.InputShape("zz"); !errors.Is(err, dnnfusion.ErrUnknownInput) {
		t.Errorf("InputShape: got %v, want ErrUnknownInput", err)
	}

	// Compile-stage taxonomy: nil and invalid graphs.
	if _, err := dnnfusion.Compile(nil); !errors.Is(err, dnnfusion.ErrInvalidGraph) {
		t.Errorf("nil graph: got %v, want ErrInvalidGraph", err)
	}
	dup := dnnfusion.NewGraph("dup-inputs")
	x1 := dup.AddInput("x", dnnfusion.ShapeOf(2, 2))
	dup.AddInput("x", dnnfusion.ShapeOf(2, 2))
	dup.MarkOutput(dup.Apply1(dnnfusion.Relu(), x1))
	if _, err := dnnfusion.Compile(dup); !errors.Is(err, dnnfusion.ErrInvalidGraph) {
		t.Errorf("duplicate input names: got %v, want ErrInvalidGraph", err)
	}

	// The runner still works after every error above.
	if _, err := runner.Run(ctx, good); err != nil {
		t.Fatalf("runner poisoned by earlier errors: %v", err)
	}
}

// TestOutputNameCollisions pins the fallback naming: an explicit name that
// shadows a positional fallback must not make two outputs share a key, and
// MarkOutputAs on an input must not destroy the input's feed name.
func TestOutputNameCollisions(t *testing.T) {
	g := dnnfusion.NewGraph("collide")
	x := g.AddInput("x", dnnfusion.ShapeOf(2, 2))
	a := g.Apply1(dnnfusion.Relu(), x)
	b := g.Apply1(dnnfusion.Sigmoid(), x)
	g.MarkOutputAs("output1", a) // explicit name equals index 1's fallback
	g.MarkOutput(b)              // unnamed, lands at index 1
	model, err := dnnfusion.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	names := model.OutputNames()
	if len(names) != 2 || names[0] != "output1" || names[1] == "output1" {
		t.Fatalf("output names = %v, want [output1 <distinct>]", names)
	}
	got, err := model.NewRunner().Run(context.Background(),
		map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("run returned %d outputs, want 2 (one was silently dropped)", len(got))
	}

	// MarkOutputAs on an input keeps the input addressable by its name.
	pass := dnnfusion.NewGraph("passthrough")
	in := pass.AddInput("x", dnnfusion.ShapeOf(2, 2))
	pass.MarkOutputAs("y", in)
	pm, err := dnnfusion.Compile(pass)
	if err != nil {
		t.Fatal(err)
	}
	if names := pm.InputNames(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("input names = %v, want [x] after MarkOutputAs on the input", names)
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	g := buildPublicMLP(t)
	model, err := dnnfusion.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = model.NewRunner().Run(ctx, map[string]*dnnfusion.Tensor{"x": dnnfusion.Rand(4, 16)})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run: got %v, want context.Canceled", err)
	}
}

// TestConcurrentRunners is the acceptance gate for the serving API: eight
// goroutines each own a Runner over one shared Model, run distinct inputs
// repeatedly, and every output must match the reference interpreter to
// 1e-4. Run under -race this also proves the compiled artifact is free of
// shared mutable per-run state.
func TestConcurrentRunners(t *testing.T) {
	g := buildTwoIOGraph(t)
	model, err := dnnfusion.Compile(g)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iterations = 10

	// Distinct per-goroutine inputs with interpreter ground truth,
	// computed up front so the parallel phase only exercises Runners.
	type testCase struct {
		inputs map[string]*dnnfusion.Tensor
		want   map[string]*dnnfusion.Tensor
	}
	cases := make([]testCase, goroutines)
	for i := range cases {
		a := dnnfusion.Rand(4, 8)
		b := dnnfusion.Rand(8, 8)
		// Perturb per goroutine so every worker computes different data.
		for j := range a.Data() {
			a.Data()[j] += float32(i) * 0.1
		}
		inputs := map[string]*dnnfusion.Tensor{"a": a, "b": b}
		want, err := dnnfusion.InterpretNamed(g, inputs)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = testCase{inputs: inputs, want: want}
	}

	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runner := model.NewRunner()
			tc := cases[id]
			for iter := 0; iter < iterations; iter++ {
				got, err := runner.Run(context.Background(), tc.inputs)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %w", id, iter, err)
					return
				}
				for name, want := range tc.want {
					out := got[name]
					if out == nil {
						errc <- fmt.Errorf("goroutine %d: missing output %q", id, name)
						return
					}
					for j := range want.Data() {
						d := float64(want.Data()[j] - out.Data()[j])
						if d < -1e-4 || d > 1e-4 {
							errc <- fmt.Errorf("goroutine %d iter %d: output %q diverges at %d", id, iter, name, j)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
