package dnnfusion

import (
	"context"
	"fmt"

	"dnnfusion/internal/core"
	"dnnfusion/internal/engine"
	"dnnfusion/internal/graph"
	"dnnfusion/internal/tensor"
)

// BatchModel is a batch-capacity variant of a Model: the same network
// compiled with every input's leading axis scaled by Batch, so up to Batch
// same-shape requests execute as one inference over one arena plan. It is
// the execution substrate of dynamic request batching (see the serve
// package): a batcher coalesces concurrent single-request Run calls,
// drives them through one BatchRunner, and scatters the per-request output
// segments back to the callers.
//
// The variant is derived from the base model's already-rewritten compiled
// graph with graph rewriting disabled and the base executor's worker pool
// borrowed, so batched execution is bit-identical to sequential Runner.Run
// calls on the base model (pinned by the batching parity tests) and the
// pair shares one set of worker lanes. Like Model, a BatchModel is
// immutable and safe for concurrent use through per-goroutine BatchRunners.
type BatchModel struct {
	base  *Model
	m     *Model
	batch int

	inputs  map[string]*batchInSpec
	inNames []string
	outputs []batchOutSpec
}

type batchInSpec struct {
	v         *graph.Value // the batch graph's input value
	baseShape Shape        // one request's segment shape
	seg       int          // elements per request
}

type batchOutSpec struct {
	name      string
	baseShape Shape
	seg       int
}

// CompileBatch compiles the model's batch-capacity variant for the given
// batch size. It fails with an error wrapping ErrNotBatchable when the
// graph does not scale along its inputs' leading axes (an operator
// hard-codes the leading extent, collapses it, or moves it into a
// contracted dimension) and with ErrCompile when the scaled graph fails to
// compile. batch must be at least 1.
//
// The structural check cannot see semantics: an operator that mixes rows
// without changing shape (a Softmax over axis 0) passes it but is wrong to
// batch. serve guards against this with a registration-time parity check
// comparing one batched run against sequential runs; direct CompileBatch
// callers that need the same guarantee should do the same.
//
// Options default to the base model's compile configuration (minus graph
// rewriting, which already ran); pass options only to override deployment
// knobs such as WithThreads.
func (m *Model) CompileBatch(batch int, opts ...Option) (*BatchModel, error) {
	if batch < 1 {
		return nil, fmt.Errorf("%w: batch size %d < 1", ErrNotBatchable, batch)
	}
	bg, err := graph.WithLeadingBatch(m.Compiled.G, batch)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotBatchable, err)
	}
	cfg := m.Compiled.Opts
	// The base compiled graph is already rewritten; rewriting it again
	// could change the math (and therefore the bits) relative to the base
	// model, breaking batching's "semantically invisible" contract.
	cfg.GraphRewrite = false
	cfg.Pool = m.Compiled.SharedPool()
	// Measured tuning (if enabled on the base model) keys the variant's
	// tuned plan by its own batch size, so the serving batcher executes
	// the plan tuned for the batches it actually forms.
	cfg.BatchSize = batch
	baseThreads := cfg.Threads
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Threads != baseThreads {
		// An explicit WithThreads override wins over pool borrowing: the
		// variant gets its own pool at the requested lane count (the
		// executor ignores Threads whenever Pool is set).
		cfg.Pool = nil
	}
	inner, err := Compile(bg, func(o *core.Options) { *o = cfg })
	if err != nil {
		return nil, err
	}
	bm := &BatchModel{base: m, m: inner, batch: batch}
	bm.inputs = make(map[string]*batchInSpec, len(m.inputNames))
	for i, name := range m.inputNames {
		baseShape := m.Compiled.G.Inputs[i].Shape.Clone()
		bm.inputs[name] = &batchInSpec{
			v:         inner.Compiled.G.Inputs[i],
			baseShape: baseShape,
			seg:       baseShape.NumElements(),
		}
		bm.inNames = append(bm.inNames, name)
	}
	for i, nv := range m.outputs {
		baseShape := nv.v.Shape.Clone()
		bm.outputs = append(bm.outputs, batchOutSpec{
			name:      nv.name,
			baseShape: baseShape,
			seg:       baseShape.NumElements(),
		})
		// The inner model's output names derive from the batch graph; give
		// them the base model's public names so both address outputs
		// identically (positions are preserved end to end).
		inner.outputs[i].name = nv.name
	}
	return bm, nil
}

// Batch returns the batch capacity the variant was compiled for.
func (bm *BatchModel) Batch() int { return bm.batch }

// Base returns the batch-1 model the variant was derived from.
func (bm *BatchModel) Base() *Model { return bm.base }

// Model returns the batch-capacity compiled model itself (its inputs carry
// the scaled leading axes), for introspection: Simulate, Kernels,
// PlannedPeakBytes of the batch arena, and so on.
func (bm *BatchModel) Model() *Model { return bm.m }

// PlannedPeakBytes is the batch-capacity arena each BatchRunner pins while
// bound — the whole batch executes out of one planned arena.
func (bm *BatchModel) PlannedPeakBytes() int64 { return bm.m.PlannedPeakBytes() }

// NewRunner creates an independent batched-inference session. Like Runner,
// a BatchRunner belongs to one goroutine at a time; any number of them run
// in parallel over one BatchModel. Creation is cheap; the first RunBatch
// (or Warm) allocates the batch-capacity arena.
func (bm *BatchModel) NewRunner() *BatchRunner {
	br := &BatchRunner{
		bm:   bm,
		sess: bm.m.Compiled.NewSession(),
	}
	br.lanes = make([]map[*graph.Value]*tensor.Tensor, bm.batch)
	for i := range br.lanes {
		br.lanes[i] = make(map[*graph.Value]*tensor.Tensor, len(bm.inputs))
	}
	return br
}

// BatchRunner executes coalesced batches over a shared BatchModel. The
// steady-state hot path — validation, scattering request data into the
// arena, kernel execution, and per-request output views — performs zero
// heap allocations.
type BatchRunner struct {
	bm    *BatchModel
	sess  *engine.Session
	lanes []map[*graph.Value]*tensor.Tensor
	// rings caches per-request output views into the session's two output
	// ring sets, keyed by ring identity so the cache survives out-of-step
	// parity after errors.
	rings [2]batchRing
}

type batchRing struct {
	key *tensor.Tensor // identity of the ring set (its first output tensor)
	res []map[string]*Tensor
}

// Warm binds the runner's batch-capacity arena and kernels before traffic
// arrives; see Runner.Warm.
func (br *BatchRunner) Warm() error { return br.sess.Warm() }

// Release drops the runner's arena, bound kernels, and cached output
// views; the next RunBatch rebinds transparently.
func (br *BatchRunner) Release() {
	br.sess.Release()
	br.rings = [2]batchRing{}
}

// RunBatch executes 1..Batch() requests as one batched inference. Each
// request maps input names to base-shaped tensors (every model input
// present, declared shape) exactly as in Runner.Run; request data is
// copied into the batch arena, so callers may reuse fed tensors
// immediately. Partial batches pad the tail lanes with request 0 and
// discard the padded outputs.
//
// The result holds one output map per request, in request order. Output
// tensors are views into the session's double-buffered batch outputs: the
// maps and tensors returned by one RunBatch remain valid and unchanged
// through the next RunBatch on this runner and are overwritten by the one
// after that — Clone to retain longer. Errors wrap ErrUnknownInput,
// ErrMissingInput, or ErrShapeMismatch (as a *ShapeError), naming the
// offending request.
func (br *BatchRunner) RunBatch(ctx context.Context, reqs []map[string]*Tensor) ([]map[string]*Tensor, error) {
	n := len(reqs)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrMissingInput)
	}
	if n > br.bm.batch {
		return nil, fmt.Errorf("dnnfusion: %d requests exceed batch capacity %d", n, br.bm.batch)
	}
	for i, req := range reqs {
		lane := br.lanes[i]
		clear(lane)
		for name, t := range req {
			spec, ok := br.bm.inputs[name]
			if !ok {
				return nil, fmt.Errorf("%w: request %d: %q (model inputs: %v)", ErrUnknownInput, i, name, br.bm.inNames)
			}
			if t == nil {
				return nil, fmt.Errorf("%w: request %d: %q fed a nil tensor", ErrMissingInput, i, name)
			}
			if !t.Shape().Equal(spec.baseShape) {
				return nil, &ShapeError{Input: name, Want: spec.baseShape.Clone(), Got: t.Shape()}
			}
			lane[spec.v] = t
		}
		for _, name := range br.bm.inNames {
			if _, ok := req[name]; !ok {
				return nil, fmt.Errorf("%w: request %d: %q", ErrMissingInput, i, name)
			}
		}
	}
	outs, err := br.sess.RunBatch(ctx, br.lanes[:n], br.bm.batch)
	if err != nil {
		return nil, err
	}
	ring := br.ringFor(outs)
	return ring.res[:n], nil
}

// ringFor returns the per-request view set over the given output ring,
// building it on the first encounter of each of the session's two ring
// sets (all allocation happens in these two builds; after that the lookup
// is two pointer compares).
func (br *BatchRunner) ringFor(outs []*tensor.Tensor) *batchRing {
	key := outs[0]
	if br.rings[0].key == key {
		return &br.rings[0]
	}
	if br.rings[1].key == key {
		return &br.rings[1]
	}
	slot := &br.rings[0]
	if slot.key != nil {
		if br.rings[1].key != nil {
			// Both stale (the session was released and rebound): start over.
			br.rings = [2]batchRing{}
		} else {
			slot = &br.rings[1]
		}
	}
	slot.key = key
	slot.res = make([]map[string]*Tensor, br.bm.batch)
	for i := range slot.res {
		res := make(map[string]*Tensor, len(br.bm.outputs))
		for j, spec := range br.bm.outputs {
			data := outs[j].Data()
			res[spec.name] = tensor.ViewOf(data[i*spec.seg:(i+1)*spec.seg], spec.baseShape)
		}
		slot.res[i] = res
	}
	return slot
}
